"""Three-level cache hierarchy with prefetchers and an off-chip predictor.

This module glues together the functional caches, the DRAM bandwidth model,
the prefetchers and the OCP into the demand-access path the simulator
drives.  It implements the mechanisms the paper's observations rest on:

* demand loads traverse L1D -> L2C -> LLC -> DRAM, accumulating round-trip
  latencies (Table 5);
* a positive OCP prediction launches a speculative DRAM fetch
  ``ocp_issue_latency`` cycles after the load is seen, removing the on-chip
  lookup serialisation from true off-chip misses (Hermes semantics) at the
  cost of wasted bandwidth on mispredictions;
* prefetchers observe the demands looking up their level and fill candidate
  lines, consuming DRAM bandwidth and potentially polluting the LLC;
* fills, evictions, pollution, prefetch usefulness and off-chip fill
  accuracy (Figure 3) are all tracked and exposed to coordination policies.

The demand path is allocation-free: cache lookups/fills return slot
indices / reused scratch objects (struct-of-arrays caches), the per-level
latencies are precomputed floats, observer notifications are skipped when
no observer is attached, and :meth:`load` returns a single reused
:class:`LoadResult` scratch consumed immediately by the caller.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..ocp.base import OffChipPredictor
from ..prefetchers.base import Prefetcher
from .cache import Cache
from .dram import MainMemory
from .params import LINE_SHIFT, SystemParams
from .stats import SimStats

#: Cap on remembered prefetch-evicted victims (models the finite hardware
#: pollution filter; also bounds memory in long runs).
_POLLUTION_WINDOW = 1 << 15

_LINE_MASK = (1 << LINE_SHIFT) - 1

PrefetchFilter = Callable[[int, int, str], bool]


class CacheHierarchy:
    """Single core's view of the memory system.

    ``llc`` and ``dram`` may be shared across hierarchies (multi-core).
    The prefetcher list is fixed at construction (coordination policies
    toggle ``enabled`` flags rather than mutating the list).
    """

    def __init__(
        self,
        params: SystemParams,
        prefetchers: Sequence[Prefetcher] = (),
        ocp: Optional[OffChipPredictor] = None,
        dram: Optional[MainMemory] = None,
        llc: Optional[Cache] = None,
        stats: Optional[SimStats] = None,
    ) -> None:
        self.params = params
        self.l1d = Cache(params.l1d)
        self.l2c = Cache(params.l2c)
        self.llc = llc if llc is not None else Cache(params.llc)
        self.dram = dram if dram is not None else MainMemory(params.dram)
        self.stats = stats if stats is not None else SimStats()
        self.ocp = ocp
        self.prefetchers = list(prefetchers)
        for pf in self.prefetchers:
            if pf.level not in ("l1d", "l2c"):
                raise ValueError(f"{pf.name}: unsupported level {pf.level!r}")
        self._l1_prefetchers = [p for p in self.prefetchers
                                if p.level == "l1d"]
        self._l2_prefetchers = [p for p in self.prefetchers
                                if p.level == "l2c"]
        #: Optional per-request prefetch drop filter (used by TLP).
        self.prefetch_filter: Optional[PrefetchFilter] = None
        #: Recently prefetch-evicted LLC victims, for pollution accounting.
        self._pollution_victims: dict = {}
        self._pollution_clock = 0
        #: Observers notified of microarchitectural events (Athena trackers).
        self.observers: List = []
        # Per-method bound-callback cache, rebuilt when the observers list
        # changes (compared by content, so same-length replacement is
        # detected too).
        self._observer_methods: dict = {}
        self._observer_snapshot: List = []
        # Precomputed cumulative round-trip latencies (hot-path constants).
        self._lat_l1 = float(params.l1d.latency)
        self._lat_l1_l2 = float(params.l1d.latency + params.l2c.latency)
        self._lat_onchip = float(
            params.l1d.latency + params.l2c.latency + params.llc.latency
        )
        self._ocp_issue_latency = params.ocp_issue_latency
        # Bound-method handles (cache and DRAM wiring is fixed after init).
        self._dram_access_time = self.dram.access_time
        self._l1d_lookup = self.l1d.lookup_slot
        self._l2c_lookup = self.l2c.lookup_slot
        self._llc_lookup = self.llc.lookup_slot
        # L1 demand lookups are inlined in load() when L1 runs LRU (the
        # stock configuration); None falls back to the generic path.
        self._l1_lru = self.l1d._lru
        self._l1_slot_get = self.l1d._slot_get
        self._load_result = LoadResult(0.0, False)

    def __getstate__(self) -> dict:
        # ``_l1_slot_get`` aliases the L1 cache's bound ``dict.get``,
        # which copy/pickle treat as atomic (see ``Cache.__getstate__``);
        # rebind it against the copied L1 instead.
        state = self.__dict__.copy()
        del state["_l1_slot_get"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._l1_slot_get = self.l1d._slot_get

    # ------------------------------------------------------------------ events

    def _notify(self, method: str, *args) -> None:
        observers = self.observers
        if observers != self._observer_snapshot:
            self._observer_methods = {}
            self._observer_snapshot = list(observers)
        callbacks = self._observer_methods.get(method)
        if callbacks is None:
            callbacks = [
                getattr(obs, method) for obs in observers
                if getattr(obs, method, None) is not None
            ]
            self._observer_methods[method] = callbacks
        for callback in callbacks:
            callback(*args)

    # ------------------------------------------------------------------ demand

    def load(self, pc: int, addr: int, now: float) -> "LoadResult":
        """Perform a demand load; returns its latency and outcome.

        The returned :class:`LoadResult` is a scratch object reused by the
        next load on this hierarchy — consume it before calling again.
        """
        line = addr >> LINE_SHIFT
        byte_offset = addr & _LINE_MASK
        stats = self.stats
        observers = self.observers
        ocp = self.ocp

        # 1. Off-chip prediction races the cache lookup.
        ocp_predicted = False
        ocp_completion = None
        if ocp is not None:
            if ocp.predict(pc, line, byte_offset):
                ocp_predicted = True
                stats.ocp_predictions += 1
                ocp_completion = self._dram_access_time(
                    now + self._ocp_issue_latency, line, "ocp")
                stats.dram_ocp_requests += 1
                if observers:
                    self._notify("on_ocp_request", line)

        # 2. Walk the hierarchy.
        went_offchip = False
        l1d = self.l1d
        lru = self._l1_lru
        if lru is not None:
            # Inlined Cache.lookup_slot for the L1-LRU fast path.
            slot = self._l1_slot_get(line, -1)
            if slot >= 0:
                l1d.hits += 1
                l1d._reused[slot] = 1
                lru._clock += 1
                lru._timestamp[slot] = lru._clock
            else:
                l1d.misses += 1
        else:
            slot = self._l1d_lookup(line, pc)
        if slot >= 0:
            stats.l1d_hits += 1
            lat = self._lat_l1
            wait = l1d._ready[slot] - now
            latency = lat if lat >= wait else wait
            if l1d._prefetched[slot]:
                self._credit_useful_prefetch(l1d, slot, line, "l1d")
            if self._l1_prefetchers:
                self._train_l1_prefetchers(pc, line, True, now)
        else:
            stats.l1d_misses += 1
            if self._l1_prefetchers:
                self._train_l1_prefetchers(pc, line, False, now)
            l2c = self.l2c
            slot = self._l2c_lookup(line, pc)
            if slot >= 0:
                stats.l2c_hits += 1
                ready = l2c._ready[slot]
                lat = self._lat_l1_l2
                wait = ready - now
                latency = lat if lat >= wait else wait
                self._fill_level(l1d, line, pc, False, False, False,
                                 ready)
                if l2c._prefetched[slot]:
                    self._credit_useful_prefetch(l2c, slot, line, "l2c")
                if self._l2_prefetchers:
                    self._train_l2_prefetchers(pc, line, True, now)
            else:
                stats.l2c_misses += 1
                if self._l2_prefetchers:
                    self._train_l2_prefetchers(pc, line, False, now)
                llc = self.llc
                slot = self._llc_lookup(line, pc)
                if slot >= 0:
                    stats.llc_hits += 1
                    ready = llc._ready[slot]
                    lat = self._lat_onchip
                    wait = ready - now
                    latency = lat if lat >= wait else wait
                    self._fill_level(l2c, line, pc, False, False, False,
                                     ready)
                    self._fill_level(l1d, line, pc, False, False, False,
                                     ready)
                    if llc._prefetched[slot]:
                        self._credit_useful_prefetch(llc, slot, line, "llc")
                else:
                    went_offchip = True
                    latency = self._serve_offchip_load(
                        pc, line, now, ocp_predicted, ocp_completion
                    )

        # 3. Resolve OCP training and accuracy accounting.
        if ocp is not None:
            ocp.train(pc, line, went_offchip, byte_offset)
            if ocp_predicted and went_offchip:
                stats.ocp_correct += 1
                if observers:
                    self._notify("on_ocp_correct", line)

        if observers:
            # Direct dispatch of the per-load event: same callback cache
            # as _notify, minus the varargs call (hot with Athena
            # trackers attached).
            callbacks = self._observer_methods.get("on_demand_load")
            if callbacks is None or observers != self._observer_snapshot:
                self._notify("on_demand_load", pc, line, went_offchip)
            else:
                for callback in callbacks:
                    callback(pc, line, went_offchip)
        result = self._load_result
        result.latency = latency
        result.went_offchip = went_offchip
        return result

    def _serve_offchip_load(
        self,
        pc: int,
        line: int,
        now: float,
        ocp_predicted: bool,
        ocp_completion: Optional[float],
    ) -> float:
        """Fetch a demand miss from DRAM; OCP hit short-circuits the lookup."""
        p = self.params
        stats = self.stats
        if ocp_predicted and ocp_completion is not None:
            # The speculative request *is* the fetch: data arrives when the
            # early DRAM access completes (but the demand still pays at
            # least its L1 lookup before the miss is known to the core).
            wait = ocp_completion - now
            lat1 = self._lat_l1
            latency = wait if wait >= lat1 else lat1
            saved = (now + self._lat_onchip) - (now + p.ocp_issue_latency)
            if saved > 0.0:
                stats.ocp_saved_cycles += saved
        else:
            issue_time = now + self._lat_onchip
            completion = self._dram_access_time(issue_time, line, "demand")
            stats.dram_demand_requests += 1
            latency = completion - now
        stats.llc_miss_latency_sum += latency
        stats.llc_misses += 1
        pollution = self._pollution_victims
        if line in pollution:
            stats.pollution_misses += 1
            del pollution[line]
            if self.observers:
                self._notify("on_pollution_miss", line)
        if self.observers:
            self._notify("on_llc_demand_miss", line)

        arrival = now + latency
        self._fill_level(self.llc, line, pc, False, False, True, arrival)
        self._fill_level(self.l2c, line, pc, False, False, True, arrival)
        self._fill_level(self.l1d, line, pc, False, False, True, arrival)
        if self.ocp is not None:
            self.ocp.on_fill(line)
        return latency

    def store(self, pc: int, addr: int, now: float) -> float:
        """Perform a store.  Write-allocate; latency hidden by the SQ.

        The store's fill traffic is charged to DRAM (it contends with
        everything else) but the returned latency is a single cycle because
        stores retire through the store queue off the critical path.
        """
        line = addr >> LINE_SHIFT
        slot = self._l1d_lookup(line, pc, True)
        if slot < 0:
            if self.l2c.probe(line):
                self.l2c.lookup_slot(line, pc)
            elif self.llc.probe(line):
                self.llc.lookup_slot(line, pc)
                self._fill_level(self.l2c, line, pc)
            else:
                self.dram.access_time(now, line, "demand")
                self.stats.dram_demand_requests += 1
                self._fill_level(self.llc, line, pc, False, False, True)
                self._fill_level(self.l2c, line, pc, False, False, True)
                if self.ocp is not None:
                    self.ocp.on_fill(line)
            self._fill_level(self.l1d, line, pc, False, True)
        return 1.0

    # ------------------------------------------------------------------ fills

    def _fill_level(
        self,
        cache: Cache,
        line: int,
        pc: int,
        is_prefetch: bool = False,
        dirty: bool = False,
        from_dram: bool = False,
        ready_time: float = 0.0,
    ) -> None:
        evicted = cache.fill_fast(line, pc, is_prefetch, dirty,
                                  from_dram, ready_time)
        if evicted is None:
            return
        if cache is self.llc:
            if evicted.dirty:
                # Writebacks consume bus bandwidth at an approximate time.
                self.dram.access_time(
                    self.dram.next_bus_free, evicted.line_addr, "writeback",
                )
                self.stats.dram_writeback_requests += 1
            if self.ocp is not None:
                self.ocp.on_eviction(evicted.line_addr)
            if evicted.evicted_for_prefetch:
                self._record_pollution_victim(evicted.line_addr)
                if self.observers:
                    self._notify("on_prefetch_eviction", evicted.line_addr)
        else:
            # Non-LLC evictions write back into the next level.  The next
            # level's fill uses its own eviction scratch, so ``evicted``
            # stays valid across this call.
            if evicted.dirty:
                nxt = self.l2c if cache is self.l1d else self.llc
                nxt.fill_fast(evicted.line_addr, pc, False, True)
        if evicted.prefetched and evicted.line_addr != line:
            # Prefetched line evicted without ever being demanded.
            if cache.params.name in ("L1D", "L2C"):
                self._account_dead_prefetch(evicted)

    def _account_dead_prefetch(self, evicted) -> None:
        if evicted.reused:
            return
        # The line's prefetch bit survived until eviction => never used.
        if getattr(evicted, "filled_from_dram", False):
            self.stats.prefetch_fills_offchip_useless += 1

    def _record_pollution_victim(self, line_addr: int) -> None:
        self._pollution_clock += 1
        self._pollution_victims[line_addr] = self._pollution_clock
        if len(self._pollution_victims) > _POLLUTION_WINDOW:
            oldest = min(self._pollution_victims, key=self._pollution_victims.get)
            del self._pollution_victims[oldest]

    def _credit_useful_prefetch(self, cache: Cache, slot: int, line: int,
                                level: str = "llc") -> None:
        cache._prefetched[slot] = 0
        stats = self.stats
        stats.prefetches_useful += 1
        if cache._from_dram[slot]:
            stats.prefetches_useful_offchip += 1
            if level == "l1d":
                stats.prefetches_useful_offchip_l1d += 1
            elif level == "l2c":
                stats.prefetches_useful_offchip_l2c += 1
        for pf in self.prefetchers:
            pf.on_prefetch_useful(line)
        if self.observers:
            self._notify("on_prefetch_useful", line)

    # ------------------------------------------------------------------ prefetch

    def _train_l1_prefetchers(self, pc: int, line: int, hit: bool, now: float) -> None:
        for pf in self._l1_prefetchers:
            self._issue_prefetches(pf, pf.observe(pc, line, hit), pc, now)

    def _train_l2_prefetchers(self, pc: int, line: int, hit: bool, now: float) -> None:
        for pf in self._l2_prefetchers:
            self._issue_prefetches(pf, pf.observe(pc, line, hit), pc, now)

    def _issue_prefetches(
        self, pf: Prefetcher, candidates: List[int], pc: int, now: float
    ) -> None:
        prefetch_filter = self.prefetch_filter
        for cand in candidates:
            if cand < 0:
                continue
            if prefetch_filter is not None and not prefetch_filter(
                pc, cand, pf.level
            ):
                continue
            self._issue_one_prefetch(pf, cand, pc, now)

    def _issue_one_prefetch(
        self, pf: Prefetcher, line: int, pc: int, now: float
    ) -> None:
        is_l1 = pf.level == "l1d"
        target = self.l1d if is_l1 else self.l2c
        if line in target._slot_of:
            return
        stats = self.stats
        stats.prefetches_issued += 1
        if self.observers:
            self._notify("on_prefetch_issued", line)

        from_dram = False
        arrival = now
        if is_l1 and line in self.l2c._slot_of:
            pass  # pulled up from L2, no off-chip traffic
        elif line in self.llc._slot_of:
            pass  # pulled up from LLC, no off-chip traffic
        else:
            arrival = self._dram_access_time(now, line, "prefetch")
            stats.dram_prefetch_requests += 1
            from_dram = True
            stats.prefetch_fills_offchip += 1
            if is_l1:
                stats.prefetch_fills_offchip_l1d += 1
            else:
                stats.prefetch_fills_offchip_l2c += 1
            self._fill_level(self.llc, line, pc, True, False, True,
                             arrival)
            if self.ocp is not None:
                self.ocp.on_fill(line)
        self._fill_level(target, line, pc, True, False, from_dram,
                         arrival)
        pf.on_prefetch_filled(line, from_dram)

    # ------------------------------------------------------------------ control

    def set_prefetchers_enabled(self, flags: Sequence[bool]) -> None:
        if len(flags) != len(self.prefetchers):
            raise ValueError(
                f"expected {len(self.prefetchers)} flags, got {len(flags)}"
            )
        for pf, flag in zip(self.prefetchers, flags):
            pf.enabled = bool(flag)

    def set_ocp_enabled(self, flag: bool) -> None:
        if self.ocp is not None:
            self.ocp.enabled = bool(flag)

    def set_degree_fraction(self, fraction: float) -> None:
        for pf in self.prefetchers:
            pf.set_degree_fraction(fraction)

    def reset_cache_hit_counters(self, include_shared: bool = True) -> None:
        """Restart the per-cache hit/miss counters (warmup-end boundary).

        ``include_shared=False`` leaves the (possibly shared) LLC alone —
        multi-core runs reset only private levels, since cores reach their
        warmup boundary at different times.
        """
        self.l1d.reset_hit_counters()
        self.l2c.reset_hit_counters()
        if include_shared:
            self.llc.reset_hit_counters()


class LoadResult:
    """Latency and outcome of one demand load."""

    __slots__ = ("latency", "went_offchip")

    def __init__(self, latency: float, went_offchip: bool) -> None:
        self.latency = latency
        self.went_offchip = went_offchip


def _ignore(*_args) -> None:
    """Default no-op observer method."""
