"""Tests for the QVStore (paper §5.1, Table 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qvstore import QVStore


def make_store(**kwargs):
    defaults = dict(num_actions=4, num_planes=8, rows_per_plane=64,
                    q_init=0.0, q_clip=4.0)
    defaults.update(kwargs)
    return QVStore(**defaults)


class TestGeometry:
    def test_paper_default_storage_is_2kib(self):
        """Table 4: 8 planes x 64 rows x 4 actions x 8 bits = 2 KB."""
        store = make_store()
        assert store.storage_bits() == 8 * 64 * 4 * 8
        assert store.storage_kib() == 2.0

    def test_rejects_zero_actions(self):
        with pytest.raises(ValueError):
            make_store(num_actions=0)

    def test_rejects_zero_planes(self):
        with pytest.raises(ValueError):
            make_store(num_planes=0)

    def test_rejects_zero_rows(self):
        with pytest.raises(ValueError):
            make_store(rows_per_plane=0)

    def test_action_bounds_checked(self):
        store = make_store()
        with pytest.raises(IndexError):
            store.q_value(0, 4)
        with pytest.raises(IndexError):
            store.update(0, -1, 0.1)


class TestRetrieval:
    def test_initial_q_equals_init(self):
        store = make_store(q_init=0.4)
        assert store.q_value(123, 2) == pytest.approx(0.4)

    def test_q_values_consistent_with_q_value(self):
        store = make_store()
        store.update(99, 1, 0.5)
        values = store.q_values(99)
        for action in range(4):
            assert values[action] == pytest.approx(store.q_value(99, action))

    def test_rows_for_state_in_range(self):
        store = make_store()
        for state in (0, 1, 2**31, 2**60):
            rows = store.rows_for_state(state)
            assert len(rows) == 8
            assert all(0 <= r < 64 for r in rows)

    def test_distinct_hashes_across_planes(self):
        """Planes should not all agree on the row for a given state."""
        store = make_store()
        disagreements = 0
        for state in range(50):
            rows = store.rows_for_state(state)
            if len(set(rows)) > 1:
                disagreements += 1
        assert disagreements > 40

    def test_best_action_tracks_updates(self):
        store = make_store()
        store.update(7, 3, 1.0)
        assert store.best_action(7) == 3
        store.update(7, 1, 2.0)
        assert store.best_action(7) == 1


class TestUpdate:
    def test_update_moves_sum_by_delta(self):
        store = make_store()
        before = store.q_value(5, 0)
        store.update(5, 0, 0.25)
        assert store.q_value(5, 0) == pytest.approx(before + 0.25)

    def test_update_distributes_across_planes(self):
        store = make_store()
        store.update(5, 0, 0.8)
        rows = store.rows_for_state(5)
        for plane_index, row in enumerate(rows):
            snap = store.plane_snapshot(plane_index)
            assert snap[row][0] == pytest.approx(0.1)

    def test_updates_do_not_leak_to_other_actions(self):
        store = make_store()
        store.update(5, 0, 1.0)
        assert store.q_value(5, 1) == pytest.approx(0.0)

    def test_clipping_saturates(self):
        store = make_store(q_clip=1.0)
        for _ in range(100):
            store.update(5, 0, 1.0)
        assert store.q_value(5, 0) <= 1.0 + 1e-9

    def test_negative_clipping(self):
        store = make_store(q_clip=1.0)
        for _ in range(100):
            store.update(5, 0, -1.0)
        assert store.q_value(5, 0) >= -1.0 - 1e-9


class TestPerPlaneStates:
    def test_per_plane_state_list_accepted(self):
        store = make_store()
        states = list(range(8))
        store.update(states, 2, 0.4)
        assert store.q_value(states, 2) == pytest.approx(0.4)

    def test_wrong_plane_count_rejected(self):
        store = make_store()
        with pytest.raises(ValueError):
            store.q_value([1, 2, 3], 0)

    def test_shared_planes_generalize(self):
        """States sharing some per-plane tiles share part of their value."""
        store = make_store()
        a = [0, 1, 2, 3, 4, 5, 6, 7]
        b = [0, 1, 2, 3, 40, 50, 60, 70]  # shares the first four tiles
        store.update(a, 0, 0.8)
        shared = store.q_value(b, 0)
        assert 0.0 < shared < 0.8

    def test_disjoint_tilings_do_not_collide_much(self):
        store = make_store(rows_per_plane=4096)
        a = [10] * 8
        b = [99999] * 8
        store.update(a, 0, 0.8)
        assert abs(store.q_value(b, 0)) < 0.2


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**20),
                st.integers(min_value=0, max_value=3),
                st.floats(min_value=-0.5, max_value=0.5,
                          allow_nan=False, allow_infinity=False),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_q_values_always_bounded_by_clip(self, updates):
        store = make_store(q_clip=2.0)
        for state, action, delta in updates:
            store.update(state, action, delta)
        for state, action, _ in updates:
            assert -2.0 - 1e-9 <= store.q_value(state, action) <= 2.0 + 1e-9

    @given(st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=100, deadline=None)
    def test_rows_deterministic(self, state):
        store = make_store()
        assert store.rows_for_state(state) == store.rows_for_state(state)
