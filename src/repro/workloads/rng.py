"""Bulk, bit-exact reproduction of CPython's ``random.Random`` stream.

The vectorized trace generators must produce *byte-identical* arrays to
the original one-instruction-at-a-time loops, and those loops draw from a
caller-provided ``random.Random``.  This module lets the generators pull
thousands of draws per numpy call while consuming the underlying
Mersenne-Twister word stream in exactly the order the scalar code would:

* :meth:`BulkRandom.random` returns the next *k* doubles, each built from
  two 32-bit words with MT19937's ``genrand_res53`` formula — the same
  values ``rng.random()`` would return, in the same order;
* :meth:`BulkRandom.randrange` replays CPython's
  ``_randbelow_with_getrandbits`` rejection loop (draw ``n.bit_length()``
  bits per attempt, retry while the value is >= ``n``), consuming exactly
  as many words as *k* scalar ``rng.randrange(n)`` calls would;
* :meth:`BulkRandom.randrange_var` does the same for a *sequence* of
  bounds (Sattolo shuffles draw ``randrange(i)`` for descending ``i``);
* :meth:`BulkRandom.peek_words` exposes the upcoming tempered words
  *without* committing them — the vectorized emitters decode a peeked
  window into instruction blocks and then commit exactly the words
  consumed via :meth:`BulkRandom.advance_words`.

State is captured from the ``random.Random`` at construction and written
back by :meth:`sync`, so bulk and scalar draws can be freely interleaved
across phase boundaries: after ``sync()`` the original object continues
the stream exactly where the bulk draws left off.

CPython's ``random.Random`` and ``numpy.random.MT19937`` implement the
same reference MT19937 (identical 624-word state layout, twist, temper,
and ``pos`` convention), so word generation is delegated to numpy's C
core by injecting the captured state into a ``MT19937`` bit generator and
reading ``random_raw`` — ~100x faster than twisting in Python and pinned
bit-exact by ``tests/test_trace_equivalence.py``.
"""

from __future__ import annotations

import random

import numpy as np

_N = 624

#: ``genrand_res53``: (a*2**26 + b) / 2**53 with a=word>>5, b=word>>6.
_RES53_SCALE = 1.0 / 9007199254740992.0
_RES53_SHIFT = np.uint64(67108864)


class BulkRandom:
    """Vectorized view over a ``random.Random``'s Mersenne-Twister stream."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        version, internal, gauss = rng.getstate()
        if version != 3:  # pragma: no cover - CPython has used 3 since 2.6
            raise ValueError(f"unsupported random.Random state version "
                             f"{version}")
        self._version = version
        self._gauss = gauss
        self._mt = np.array(internal[:_N], dtype=np.uint32)
        self._pos = int(internal[_N])
        #: (words_generated, state) snapshots from the latest peek, valid
        #: until the live state moves; they let ``advance_words`` restore
        #: the nearest snapshot instead of regenerating the whole span.
        self._peek_marks = None

    # -- word plumbing ------------------------------------------------------

    def _bitgen(self) -> np.random.MT19937:
        """A numpy MT19937 positioned at the current stream state."""
        bg = np.random.MT19937()
        bg.state = {
            "bit_generator": "MT19937",
            "state": {"key": self._mt, "pos": self._pos},
        }
        return bg

    def _commit(self, bg: np.random.MT19937) -> None:
        state = bg.state["state"]
        self._mt = np.asarray(state["key"], dtype=np.uint32)
        self._pos = int(state["pos"])
        self._peek_marks = None

    def _take(self, count: int) -> np.ndarray:
        """The next ``count`` tempered 32-bit words; consumption committed.

        Values are 32-bit but delivered in numpy's native ``uint64``
        containers (no conversion pass).
        """
        bg = self._bitgen()
        out = bg.random_raw(count)
        self._commit(bg)
        return out

    _MARK_EVERY = 1 << 14

    def peek_words(self, count: int) -> np.ndarray:
        """The next ``count`` tempered words *without* committing them.

        32-bit values in ``uint64`` containers, like :meth:`_take`.
        Leaves periodic state snapshots behind so a following
        :meth:`advance_words` regenerates at most ``_MARK_EVERY`` words.
        """
        if count <= 0:
            return np.empty(0, dtype=np.uint64)
        bg = self._bitgen()
        if count <= self._MARK_EVERY:
            return bg.random_raw(count)
        parts = []
        marks = []
        done = 0
        while done < count:
            take = min(self._MARK_EVERY, count - done)
            parts.append(bg.random_raw(take))
            done += take
            state = bg.state["state"]
            marks.append((done, np.asarray(state["key"], dtype=np.uint32),
                          int(state["pos"])))
        self._peek_marks = marks
        return np.concatenate(parts)

    def advance_words(self, count: int) -> None:
        """Commit ``count`` words previously observed via peeking."""
        if count <= 0:
            return
        if self._peek_marks is not None:
            for done, key, pos in reversed(self._peek_marks):
                if done <= count:
                    self._mt = key
                    self._pos = pos
                    count -= done
                    break
        bg = self._bitgen()
        if count:
            bg.random_raw(count)
        self._commit(bg)

    # -- draw primitives ----------------------------------------------------

    def random(self, k: int) -> np.ndarray:
        """The next ``k`` values of ``rng.random()`` as a float64 array."""
        if k <= 0:
            return np.empty(0, dtype=np.float64)
        words = self._take(2 * k)
        a = words[0::2] >> np.uint64(5)
        b = words[1::2] >> np.uint64(6)
        return (a * _RES53_SHIFT + b) * _RES53_SCALE

    def randrange(self, n: int, k: int) -> np.ndarray:
        """The next ``k`` values of ``rng.randrange(n)`` as int64.

        Replays the ``getrandbits``-rejection loop over the word stream:
        each attempt shifts one word down to ``n.bit_length()`` bits and
        rejects values ``>= n``, so word consumption matches the scalar
        calls exactly.
        """
        if k <= 0:
            return np.empty(0, dtype=np.int64)
        if n <= 0:
            raise ValueError("empty range for randrange()")
        if int(n).bit_length() > 32:
            # getrandbits(>32) consumes several words per attempt; no
            # generator draws bounds that large, so keep the fast path.
            raise NotImplementedError("randrange bounds beyond 32 bits")
        shift = np.uint64(32 - int(n).bit_length())
        scratch = self._bitgen()
        accepted: list = []
        have = 0
        consumed = 0
        while have < k:
            deficit = k - have
            # acceptance probability is n / 2**bits > 0.5, so a modest
            # overshoot nearly always finishes in one round.
            chunk = max(64, deficit + (deficit >> 2) + 8)
            cand = scratch.random_raw(chunk) >> shift
            ok = np.flatnonzero(cand < n)
            if have + ok.size >= k:
                last = ok[k - have - 1]
                accepted.append(cand[ok[: k - have]])
                consumed += int(last) + 1
                have = k
            else:
                accepted.append(cand[ok])
                consumed += chunk
                have += ok.size
        self.advance_words(consumed)
        return np.concatenate(accepted).astype(np.int64)

    def randrange_var(self, bounds) -> np.ndarray:
        """``rng.randrange(n)`` for each ``n`` in ``bounds`` (varying)."""
        out = np.empty(len(bounds), dtype=np.int64)
        scratch = self._bitgen()
        buf: list = []
        bi = 0
        consumed = 0
        for j, n in enumerate(bounds):
            n = int(n)
            if n <= 0 or n.bit_length() > 32:
                raise ValueError(f"unsupported randrange bound {n}")
            shift = 32 - n.bit_length()
            while True:
                if bi == len(buf):
                    buf = scratch.random_raw(4096).tolist()
                    bi = 0
                word = buf[bi]
                bi += 1
                consumed += 1
                r = word >> shift
                if r < n:
                    out[j] = r
                    break
        self.advance_words(consumed)
        return out

    # -- state round trip ---------------------------------------------------

    def sync(self) -> None:
        """Write the advanced state back into the wrapped ``Random``."""
        state = tuple(int(x) for x in self._mt) + (int(self._pos),)
        self._rng.setstate((self._version, state, self._gauss))
