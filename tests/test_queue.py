"""Tests for the durable job queue and the lease-based worker service.

Covers the queue's state machine (:mod:`repro.engine.queue`), the
worker drain loop (:mod:`repro.engine.service`), the Engine's queue
route (dispatch → embedded worker → store), the SQLite busy-retry
seam (:mod:`repro.engine.backend`), and the CLI surface
(``repro worker`` / ``repro queue`` / ``exp run --queue`` /
``exp resume``).  The crash tests are real: a worker process is
started with :mod:`subprocess`, SIGKILLed mid-job, and the campaign
must finish without recomputing anything that already landed.
"""

import os
import sqlite3
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.engine import Engine, JobQueue, QueueWorker, ResultStore, RunRequest
from repro.engine.backend import execute_with_retry
from repro.engine.faults import (
    ExecutionError,
    ExecutionPolicy,
    FaultPlan,
    RequestFailure,
)
from repro.experiments.configs import CacheDesign
from repro.workloads.suites import find_workload

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _request(policy="naive", workload="ligra.BFS.0", **overrides):
    defaults = dict(
        spec=find_workload(workload),
        trace_length=1500,
        design=CacheDesign.cd1(),
        policy_name=policy,
        epoch_length=150,
        warmup_fraction=0.35,
    )
    defaults.update(overrides)
    return RunRequest(**defaults)


def _requests(n=3):
    policies = ("none", "naive", "tlp", "mab", "hpac")
    return [_request(policy=policies[i % len(policies)],
                     trace_length=1500 + 100 * (i // len(policies)))
            for i in range(n)]


def _keyed(requests):
    return [(r.key(), r) for r in requests]


#: fast retry discipline: no real backoff waits.
FAST = ExecutionPolicy(max_retries=2, backoff_s=0.0, backoff_factor=1.0,
                       jitter_fraction=0.0)


# ---------------------------------------------------------------------------
# the queue state machine (cheap fake "requests": any pickleable object)
# ---------------------------------------------------------------------------

class TestDispatch:
    def test_dispatch_enqueues_pending_jobs(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite") as q:
            report = q.dispatch([("k1", "r1"), ("k2", "r2")])
            assert sorted(report.enqueued) == ["k1", "k2"]
            assert q.counts() == {"pending": 2, "leased": 0,
                                  "done": 0, "failed": 0}
            assert len(q) == 2

    def test_dispatch_is_idempotent(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch([("k1", "r1")])
            again = q.dispatch([("k1", "r1")])
            assert again.enqueued == []
            assert again.already_queued == ["k1"]
            assert len(q) == 1

    def test_dispatch_skips_done_keys(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch([("k1", "r1")])
            [lease] = q.lease("w", ttl_s=30)
            q.complete(lease.key, "w")
            report = q.dispatch([("k1", "r1"), ("k2", "r2")])
            assert report.already_done == ["k1"]
            assert report.enqueued == ["k2"]

    def test_dispatch_consults_the_store(self, tmp_path):
        class FakeStore:
            def get(self, key):
                return {"kind": "run"} if key == "warm" else None

        with JobQueue(tmp_path / "q.sqlite") as q:
            report = q.dispatch([("warm", "r1"), ("cold", "r2")],
                                store=FakeStore())
            assert report.done_from_store == ["warm"]
            assert report.enqueued == ["cold"]
            assert q.get("warm").state == "done"
            assert q.get("cold").state == "pending"

    def test_dispatch_resets_failed_jobs(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch([("k1", "r1")], max_retries=0)
            [lease] = q.lease("w", ttl_s=30)
            state = q.fail(lease.key, RequestFailure(
                key="k1", kind="exception", error="boom"))
            assert state == "failed"
            report = q.dispatch([("k1", "r1")])
            assert report.resumed_failed == ["k1"]
            job = q.get("k1")
            assert job.state == "pending"
            assert job.attempts == 0
            assert job.error is None

    def test_report_summary_mentions_every_bucket(self):
        from repro.engine.queue import DispatchReport

        report = DispatchReport(enqueued=["a"], already_done=["b"],
                                already_queued=["c"],
                                resumed_failed=["d"],
                                done_from_store=["e"])
        text = report.summary()
        assert "1 enqueued" in text
        assert "1 done from store" in text
        assert "1 already done" in text
        assert "1 already queued" in text
        assert "1 failed jobs reset" in text
        assert "(5 keys)" in text


class TestLeaseLifecycle:
    def test_lease_claims_and_charges_an_attempt(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch([("k1", "r1")])
            [lease] = q.lease("w1", ttl_s=30)
            assert lease.key == "k1"
            assert lease.request == "r1"
            assert lease.attempt == 0  # zero-based
            job = q.get("k1")
            assert job.state == "leased"
            assert job.owner == "w1"
            assert job.attempts == 1
            assert job.lease_age_s is not None

    def test_no_two_workers_lease_one_job(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch([("k1", "r1")])
            assert len(q.lease("w1", ttl_s=30)) == 1
            assert q.lease("w2", ttl_s=30) == []

    def test_lease_respects_limit_and_fifo_order(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch([("k1", "r1")])
            time.sleep(0.01)
            q.dispatch([("k2", "r2"), ("k3", "r3")])
            leases = q.lease("w", ttl_s=30, limit=2)
            assert [l.key for l in leases] == ["k1", "k2"]

    def test_heartbeat_extends_only_own_leases(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch([("k1", "r1"), ("k2", "r2")])
            [mine] = q.lease("w1", ttl_s=30, limit=1)
            [theirs] = q.lease("w2", ttl_s=30, limit=1)
            before = q.get(mine.key).lease_expires
            time.sleep(0.01)
            extended = q.heartbeat([mine.key, theirs.key], "w1", ttl_s=60)
            assert extended == 1  # w2's lease is not mine to extend
            assert q.get(mine.key).lease_expires > before

    def test_complete_is_unconditional(self, tmp_path):
        # even a reclaimed-and-re-leased job accepts the original
        # worker's completion: same key, same result.
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch([("k1", "r1")])
            q.lease("w1", ttl_s=0)
            q.reclaim()
            q.lease("w2", ttl_s=30)
            q.complete("k1", "w1")
            assert q.get("k1").state == "done"
            assert q.drained()

    def test_fail_requeues_within_budget_with_backoff(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch([("k1", "r1")], max_retries=2)
            [lease] = q.lease("w", ttl_s=30)
            failure = RequestFailure(key="k1", kind="exception",
                                     error="boom", attempts=1)
            state = q.fail(lease.key, failure, backoff_s=30.0)
            assert state == "pending"
            job = q.get("k1")
            assert job.state == "pending"
            assert job.error["kind"] == "exception"
            assert job.not_before > time.time() + 20
            # the backoff gates a re-lease until not_before passes
            assert q.lease("w", ttl_s=30) == []

    def test_fail_exhausts_budget_to_failed(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch([("k1", "r1")], max_retries=0)
            [lease] = q.lease("w", ttl_s=30)
            state = q.fail(lease.key, RequestFailure(
                key="k1", kind="exception", error="boom"))
            assert state == "failed"
            assert q.get("k1").state == "failed"
            assert q.drained()  # failed is settled, not in-flight

    def test_release_refunds_the_attempt(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch([("k1", "r1")])
            [lease] = q.lease("w", ttl_s=30)
            assert q.get("k1").attempts == 1
            q.release(lease.key)
            job = q.get("k1")
            assert job.state == "pending"
            assert job.attempts == 0  # innocent: no charge


class TestReclaim:
    def test_reclaim_requeues_expired_leases(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch([("k1", "r1")])
            q.lease("dead-worker", ttl_s=0.0)
            time.sleep(0.01)
            requeued, failed = q.reclaim()
            assert failed == []
            [failure] = requeued
            assert failure.kind == "crash"
            assert "dead-worker" in failure.error
            job = q.get("k1")
            assert job.state == "pending"
            assert job.attempts == 1  # the dead worker paid for its try

    def test_reclaim_fails_jobs_out_of_budget(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch([("k1", "r1")], max_retries=0)
            q.lease("w", ttl_s=0.0)
            time.sleep(0.01)
            requeued, failed = q.reclaim()
            assert requeued == []
            assert [f.key for f in failed] == ["k1"]
            assert q.get("k1").state == "failed"

    def test_reclaim_leaves_live_leases_alone(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch([("k1", "r1")])
            q.lease("w", ttl_s=60)
            assert q.reclaim() == ([], [])
            assert q.get("k1").state == "leased"

    def test_reset_failed_grants_a_fresh_budget(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch([("k1", "r1")], max_retries=0)
            q.lease("w", ttl_s=30)
            q.fail("k1", RequestFailure(key="k1", kind="exception",
                                        error="boom"))
            assert q.reset_failed() == ["k1"]
            job = q.get("k1")
            assert job.state == "pending"
            assert job.attempts == 0
            assert job.error is None


class TestIntrospection:
    def test_counts_states_and_histogram(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch([("k1", "r1"), ("k2", "r2"), ("k3", "r3")])
            q.lease("w", ttl_s=30, limit=1)
            q.complete("k1", "w")
            counts = q.counts()
            assert counts["done"] == 1
            assert counts["pending"] == 2
            assert q.states(["k1", "k2", "missing"]) == {
                "k1": "done", "k2": "pending"}
            assert q.attempt_histogram() == {0: 2, 1: 1}
            assert q.pending() == 2
            assert not q.drained()
            assert "done=1" in repr(q)

    def test_jobs_filtered_by_state(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch([("k1", "r1"), ("k2", "r2")])
            q.lease("w", ttl_s=30, limit=1)
            assert [j.key for j in q.jobs("leased")] == ["k1"]
            assert len(q.jobs()) == 2
            [active] = q.leases()
            assert active.owner == "w"

    def test_queue_survives_reopen(self, tmp_path):
        path = tmp_path / "q.sqlite"
        with JobQueue(path) as q:
            q.dispatch([("k1", "r1")])
        with JobQueue(path) as q:
            assert q.get("k1").state == "pending"
            [lease] = q.lease("w", ttl_s=30)
            assert lease.request == "r1"

    def test_foreign_file_is_refused(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("not a database\n")
        with pytest.raises(ValueError, match="refusing to overwrite"):
            JobQueue(path)


# ---------------------------------------------------------------------------
# the SQLite busy-retry seam (satellite: store contention hardening)
# ---------------------------------------------------------------------------

class TestBusyRetry:
    class FlakyConn:
        """Raises SQLITE_BUSY a fixed number of times, then succeeds."""

        def __init__(self, failures, message="database is locked"):
            self.failures = failures
            self.message = message
            self.calls = 0

        def execute(self, sql, params=()):
            self.calls += 1
            if self.calls <= self.failures:
                raise sqlite3.OperationalError(self.message)
            return "ok"

    def test_retries_through_transient_busy(self):
        conn = self.FlakyConn(failures=2)
        assert execute_with_retry(conn, "UPDATE x") == "ok"
        assert conn.calls == 3

    def test_gives_up_after_bounded_retries(self):
        conn = self.FlakyConn(failures=100)
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            execute_with_retry(conn, "UPDATE x", retries=2)
        assert conn.calls == 3  # initial try + 2 retries, not unbounded

    def test_non_busy_errors_are_not_retried(self):
        conn = self.FlakyConn(failures=100, message="no such table: x")
        with pytest.raises(sqlite3.OperationalError, match="no such"):
            execute_with_retry(conn, "UPDATE x")
        assert conn.calls == 1

    def test_store_put_retries_on_busy(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "s.sqlite")
        real = store._conn
        flaky = {"left": 2}

        class Wrapper:
            def execute(self, sql, params=()):
                if flaky["left"] > 0:
                    flaky["left"] -= 1
                    raise sqlite3.OperationalError("database is locked")
                return real.execute(sql, params)

            def __getattr__(self, name):
                return getattr(real, name)

        monkeypatch.setattr(store, "_conn", Wrapper())
        store.put("k", {"kind": "run"})
        assert flaky["left"] == 0
        assert store.get("k") == {"kind": "run"}
        store.close()

    def test_two_processes_share_one_queue_file(self, tmp_path):
        # WAL + busy retry in practice: a second connection writes while
        # the first holds the file open.
        path = tmp_path / "q.sqlite"
        q1 = JobQueue(path)
        q2 = JobQueue(path)
        try:
            q1.dispatch([("k1", "r1")])
            [lease] = q2.lease("w2", ttl_s=30)
            q2.complete(lease.key, "w2")
            assert q1.get("k1").state == "done"
        finally:
            q1.close()
            q2.close()


# ---------------------------------------------------------------------------
# the worker drain loop (real simulations at tiny scale)
# ---------------------------------------------------------------------------

class TestQueueWorker:
    def test_worker_drains_queue_into_store(self, tmp_path):
        requests = _requests(3)
        store = ResultStore(tmp_path / "s.sqlite")
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch(_keyed(requests))
            worker = QueueWorker(q, store=store, policy=FAST)
            report = worker.run()
            assert report.completed == 3
            assert report.terminal == 0
            assert q.counts()["done"] == 3
            assert q.drained()
            for r in requests:
                assert store.get(r.key()) is not None
        store.close()

    def test_worker_resumes_from_store_without_executing(self, tmp_path):
        # the crash window: result stored, done mark missing.
        request = _request()
        store = ResultStore(tmp_path / "s.sqlite")
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch(_keyed([request]))

            executed = []
            worker = QueueWorker(
                q, store=store, policy=FAST,
                on_result=lambda key, payload: executed.append(key))
            # simulate the dead worker's store write landing first
            store.put(request.key(), {"kind": "run", "ipc": 1.0,
                                      "stats": {}, "epochs": []})
            report = worker.run()
            assert executed == []
            assert report.resumed == 1
            assert report.completed == 0
            assert q.get(request.key()).state == "done"
        store.close()

    def test_faulted_attempt_is_retried_through_the_queue(self, tmp_path):
        request = _request()
        faults = FaultPlan(rates=(("raise", 1.0),), times=1)
        store = ResultStore(tmp_path / "s.sqlite")
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch(_keyed([request]), max_retries=2)
            worker = QueueWorker(q, store=store, policy=FAST,
                                 faults=faults)
            report = worker.run()
            # attempt 0 raised (injected), attempt 1 succeeded: the
            # retry went through queue.fail → pending → re-lease.
            assert report.retried == 1
            assert report.completed == 1
            job = q.get(request.key())
            assert job.state == "done"
            assert job.attempts == 2
        store.close()

    def test_budget_exhaustion_marks_failed_with_error(self, tmp_path):
        request = _request()
        faults = FaultPlan(rates=(("raise", 1.0),), times=99)
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch(_keyed([request]), max_retries=1)
            worker = QueueWorker(q, policy=FAST, faults=faults)
            report = worker.run()
            assert report.terminal == 1
            assert report.completed == 0
            job = q.get(request.key())
            assert job.state == "failed"
            assert job.error["kind"] == "exception"
            assert job.attempts == 2  # 1 + max_retries

    def test_watch_keys_stops_at_settled_subset(self, tmp_path):
        mine, theirs = _requests(2)
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch(_keyed([mine, theirs]))
            # someone else already finished "theirs"... no: watch only
            # "mine" — the worker must exit once mine settles even
            # though other jobs may still be pending at that instant.
            worker = QueueWorker(q, policy=FAST)
            report = worker.run(watch_keys=[mine.key()])
            assert q.get(mine.key()).state == "done"
            assert report.completed >= 1

    def test_max_idle_bounds_an_empty_queue_wait(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch([("k1", "r1")])
            q.lease("other-worker", ttl_s=120)  # nothing leasable left
            worker = QueueWorker(q, policy=FAST, poll_s=0.01)
            start = time.monotonic()
            report = worker.run(max_idle_s=0.05)
            assert time.monotonic() - start < 5.0
            assert report.completed == 0


# ---------------------------------------------------------------------------
# the Engine queue route and crash-resumable campaigns
# ---------------------------------------------------------------------------

class TestEngineQueueRoute:
    def test_cold_then_warm_run_many(self, tmp_path):
        requests = _requests(3)
        qpath = tmp_path / "q.sqlite"
        spath = tmp_path / "s.sqlite"
        with Engine(store=ResultStore(spath), queue=qpath,
                    resilience=FAST) as engine:
            results = engine.run_many(requests)
            assert len(results) == 3
            assert engine.counters.executed == 3
        with JobQueue(qpath) as q:
            assert q.counts()["done"] == 3
        # a second campaign over the same queue+store recomputes nothing
        with Engine(store=ResultStore(spath), queue=qpath,
                    resilience=FAST) as engine:
            engine.run_many(requests)
            assert engine.counters.executed == 0
            assert engine.counters.store_hits == 3

    def test_single_run_routes_through_queue(self, tmp_path):
        request = _request()
        with Engine(store=ResultStore(tmp_path / "s.sqlite"),
                    queue=tmp_path / "q.sqlite",
                    resilience=FAST) as engine:
            result = engine.run(request)
            assert result.ipc > 0
        with JobQueue(tmp_path / "q.sqlite") as q:
            assert q.get(request.key()).state == "done"

    def test_campaign_resumes_after_partial_drain(self, tmp_path):
        # half the batch is already done (by a previous life of the
        # campaign); the rerun executes only the other half.
        requests = _requests(4)
        qpath, spath = tmp_path / "q.sqlite", tmp_path / "s.sqlite"
        store = ResultStore(spath)
        with JobQueue(qpath) as q:
            q.dispatch(_keyed(requests))
            QueueWorker(q, store=store, policy=FAST).run(
                watch_keys=[r.key() for r in requests[:2]])
            done_before = q.counts()["done"]
            assert done_before >= 2
        store.close()
        with Engine(store=ResultStore(spath), queue=qpath,
                    resilience=FAST) as engine:
            engine.run_many(requests)
            assert engine.counters.executed == 4 - done_before
        with JobQueue(qpath) as q:
            assert q.counts()["done"] == 4
            # nothing was executed twice
            assert all(j.attempts <= 1 for j in q.jobs())

    def test_terminal_queue_failure_raises_execution_error(self, tmp_path):
        request = _request()
        faults = FaultPlan(rates=(("raise", 1.0),), times=99)
        policy = ExecutionPolicy(max_retries=0, backoff_s=0.0,
                                 jitter_fraction=0.0)
        with Engine(store=ResultStore(tmp_path / "s.sqlite"),
                    queue=tmp_path / "q.sqlite",
                    resilience=policy, faults=faults) as engine:
            with pytest.raises(ExecutionError) as info:
                engine.run_many([request])
            [failure] = info.value.failures
            assert failure.key == request.key()
            assert failure.kind == "exception"
        with JobQueue(tmp_path / "q.sqlite") as q:
            assert q.get(request.key()).state == "failed"

    def test_parallel_engine_shares_pool_with_queue_worker(self, tmp_path):
        requests = _requests(3)
        with Engine(store=ResultStore(tmp_path / "s.sqlite"),
                    queue=tmp_path / "q.sqlite", jobs=2,
                    resilience=FAST) as engine:
            results = engine.run_many(requests)
            assert len(results) == 3
            assert engine.counters.executed == 3
        with JobQueue(tmp_path / "q.sqlite") as q:
            assert q.counts()["done"] == 3

    def test_queue_dispatch_journal_event(self, tmp_path):
        from repro.obs import journal as obs_journal

        jpath = tmp_path / "run.jsonl"
        with Engine(store=ResultStore(tmp_path / "s.sqlite"),
                    queue=tmp_path / "q.sqlite", telemetry=jpath,
                    resilience=FAST) as engine:
            engine.run_many(_requests(2))
        events = [e for _, e in obs_journal.read_journal(jpath)]
        dispatches = [e for e in events if e["type"] == "dispatch"]
        assert dispatches and dispatches[0]["enqueued"] == 2
        assert any(e["type"] == "lease" for e in events)
        summary = obs_journal.summarize_journal(jpath)
        assert summary["queue"]["dispatched"] == 2
        assert summary["queue"]["leases"] >= 1


# ---------------------------------------------------------------------------
# kill -9: the headline robustness scenario
# ---------------------------------------------------------------------------

def _spawn_worker(queue_path, store_path, *, lease_ttl, env_extra=None,
                  max_idle=None):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.update(env_extra or {})
    argv = [sys.executable, "-m", "repro", "worker",
            "--queue", str(queue_path), "--store", str(store_path),
            "--lease-ttl", str(lease_ttl)]
    if max_idle is not None:
        argv += ["--max-idle", str(max_idle)]
    return subprocess.Popen(argv, env=env,
                            stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE)


class TestSigkillRecovery:
    def test_killed_worker_loses_lease_and_sibling_finishes(self, tmp_path):
        requests = _requests(3)
        qpath, spath = tmp_path / "q.sqlite", tmp_path / "s.sqlite"
        with JobQueue(qpath) as q:
            q.dispatch(_keyed(requests), max_retries=2)
        total = len(requests)

        # worker A hangs forever on its first job (injected), then dies.
        proc = _spawn_worker(
            qpath, spath, lease_ttl=1.0,
            env_extra={"REPRO_FAULTS": "hang=1.0,times=1,hang_s=600"})
        try:
            deadline = time.time() + 60
            with JobQueue(qpath) as q:
                while time.time() < deadline:
                    if q.counts()["leased"] >= 1:
                        break
                    time.sleep(0.05)
                else:  # pragma: no cover - diagnostic
                    pytest.fail("worker A never leased a job")
                [active] = q.leases()
                victim = active.key
        finally:
            proc.kill()
            proc.wait(timeout=30)

        with JobQueue(qpath) as q:
            # the lease outlives its owner until the TTL runs out...
            assert q.get(victim).state == "leased"
            expires = q.get(victim).lease_expires
            time.sleep(max(0.0, expires - time.time()) + 0.1)
            # ...then any process can reclaim it.
            requeued, failed = q.reclaim()
            assert failed == []
            [failure] = requeued
            assert failure.key == victim
            assert failure.kind == "crash"
            assert q.get(victim).state == "pending"
            assert q.get(victim).attempts == 1  # A paid for its try

            # worker B (no faults) finishes the campaign.
            store = ResultStore(spath)
            report = QueueWorker(q, store=store, policy=FAST,
                                 lease_ttl_s=30.0).run()
            counts = q.counts()
            assert counts["done"] == total
            assert counts["failed"] == 0
            # done-key count unchanged: every key done exactly once,
            # and the victim's record shows both attempts.
            assert len(q.jobs("done")) == total
            assert q.get(victim).attempts == 2
            assert report.completed + report.resumed >= 1
            for r in requests:
                assert store.get(r.key()) is not None
            store.close()

    def test_real_worker_process_drains_clean_queue(self, tmp_path):
        requests = _requests(2)
        qpath, spath = tmp_path / "q.sqlite", tmp_path / "s.sqlite"
        with JobQueue(qpath) as q:
            q.dispatch(_keyed(requests))
        proc = _spawn_worker(qpath, spath, lease_ttl=30.0, max_idle=5)
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err.decode()
        assert b"completed" in out
        with JobQueue(qpath) as q:
            assert q.counts()["done"] == 2


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

SPEC = """
name = "queue-cli"
scale = "tiny"

[[sweeps]]
workloads = "pool:2"
designs = ["cd1"]
policies = ["none", "naive"]
"""


class TestQueueCli:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        path = tmp_path / "exp.toml"
        path.write_text(SPEC)
        return path

    def test_dispatch_then_status_then_worker_flow(self, capsys, tmp_path,
                                                   spec_path):
        qpath = tmp_path / "q.sqlite"
        spath = tmp_path / "s.sqlite"
        assert main(["queue", "dispatch", str(spec_path),
                     "--queue", str(qpath), "--store", str(spath)]) == 0
        out = capsys.readouterr().out
        assert "enqueued" in out
        assert "drain with: repro worker" in out

        assert main(["queue", "status", str(qpath)]) == 0
        out = capsys.readouterr().out
        assert "pending=" in out
        assert "attempts histogram:" in out

        assert main(["worker", "--queue", str(qpath),
                     "--store", str(spath)]) == 0
        out = capsys.readouterr().out
        assert "completed" in out

        assert main(["queue", "status", str(qpath)]) == 0
        out = capsys.readouterr().out
        assert "pending=0" in out
        assert "failed=0" in out

    def test_exp_run_with_queue_then_warm_resume(self, capsys, tmp_path,
                                                 spec_path):
        qpath = tmp_path / "q.sqlite"
        spath = tmp_path / "s.sqlite"
        assert main(["exp", "run", str(spec_path), "--queue", str(qpath),
                     "--store", str(spath)]) == 0
        out = capsys.readouterr().out
        assert "simulations executed" in out

        assert main(["exp", "resume", str(spec_path), "--queue",
                     str(qpath), "--store", str(spath)]) == 0
        out = capsys.readouterr().out
        assert "0 simulations executed" in out

    def test_exp_resume_requires_queue(self, capsys, spec_path):
        assert main(["exp", "resume", str(spec_path)]) == 2
        assert "needs --queue" in capsys.readouterr().err

    def test_worker_requires_queue(self, capsys):
        assert main(["worker"]) == 2
        assert "needs --queue" in capsys.readouterr().err

    def test_queue_status_missing_file(self, capsys, tmp_path):
        assert main(["queue", "status", str(tmp_path / "no.sqlite")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_worker_exits_3_on_failed_jobs(self, capsys, tmp_path):
        request = _request()
        qpath = tmp_path / "q.sqlite"
        with JobQueue(qpath) as q:
            q.dispatch(_keyed([request]), max_retries=0)
        assert main(["worker", "--queue", str(qpath), "--no-store",
                     "--max-retries", "0",
                     "--faults", "raise=1.0,times=99"]) == 3
        err = capsys.readouterr().err
        assert "failed" in err
        with JobQueue(qpath) as q:
            assert q.counts()["failed"] == 1

    def test_status_shows_failed_job_error(self, capsys, tmp_path):
        with JobQueue(tmp_path / "q.sqlite") as q:
            q.dispatch([("k" * 16, "r1")], max_retries=0)
            q.lease("w", ttl_s=30)
            q.fail("k" * 16, RequestFailure(key="k" * 16,
                                            kind="exception",
                                            error="boom"))
        assert main(["queue", "status", str(tmp_path / "q.sqlite")]) == 0
        out = capsys.readouterr().out
        assert "failed jobs:" in out
        assert "exception: boom" in out

    def test_obs_summary_merges_worker_journals(self, capsys, tmp_path,
                                                spec_path):
        qpath = tmp_path / "q.sqlite"
        spath = tmp_path / "s.sqlite"
        j1, j2 = tmp_path / "j1.jsonl", tmp_path / "j2.jsonl"
        assert main(["queue", "dispatch", str(spec_path),
                     "--queue", str(qpath), "--store", str(spath),
                     "--telemetry", str(j1)]) == 0
        assert main(["worker", "--queue", str(qpath), "--store",
                     str(spath), "--telemetry", str(j2)]) == 0
        capsys.readouterr()
        assert main(["obs", "summary", str(j1), str(j2)]) == 0
        out = capsys.readouterr().out
        assert "2 journals:" in out
        assert "queue:" in out and "dispatched" in out

    def test_obs_summary_single_journal_unchanged(self, capsys, tmp_path):
        jpath = tmp_path / "j.jsonl"
        with Engine(telemetry=jpath, resilience=FAST) as engine:
            engine.run(_request())
        capsys.readouterr()
        assert main(["obs", "summary", str(jpath)]) == 0
        out = capsys.readouterr().out
        assert "journal:" in out
        assert "1 executed" in out

    def test_obs_summary_missing_one_of_many(self, capsys, tmp_path):
        jpath = tmp_path / "j.jsonl"
        jpath.write_text("")
        assert main(["obs", "summary", str(jpath),
                     str(tmp_path / "ghost.jsonl")]) == 2
        assert "not found" in capsys.readouterr().err
