"""Simulation-throughput benchmark harness (``repro bench``).

Measures the throughput of the three stages every figure regeneration is
bound by on a cold store, in three phases (``--phase``):

* ``sim`` — *simulated instructions per second* for a small matrix of
  single-core (workload x policy) cells on the paper's default CD1
  design;
* ``traces`` — *trace-build* throughput (instructions emitted per
  second) per generator family, measured for both the vectorized
  kernels and the original scalar loops (``scalar_generators()``) in
  the same process, so ``speedup_vs_scalar`` is a live apples-to-apples
  number on this machine;
* ``multicore`` — aggregate simulated instructions per second for
  shared-LLC/DRAM mixes through :class:`~repro.sim.multicore.
  MultiCoreSimulator` (traces prebuilt, so the cell isolates the
  multi-core event loop).

Everything is written to ``BENCH_sim_throughput.json``.  Three kinds of
numbers live in the output:

* per-cell ``ips`` — raw instructions/second on this machine;
* ``ips_per_mop`` — the same normalized by a pure-Python calibration
  score (million calibration ops/second), so measurements taken on
  machines of different speeds are comparable;
* ``reference`` — the checked-in pre-optimization (seed) measurements
  (``benchmarks/throughput_seed_baseline.json``) plus the per-cell and
  geomean speedup of the current core against them.

``repro bench --check BASELINE`` additionally compares the normalized
single-core geomean against a checked-in baseline file and exits
non-zero if it regressed by more than ``--tolerance`` (CI's
``bench-smoke`` job).

Every run also appends a compact provenance-stamped record (git commit,
dirty flag, hostname, normalized geomean) to ``BENCH_history.jsonl``;
``repro bench --trend`` renders that file as the cross-PR throughput
trajectory without re-benchmarking anything.
"""

from __future__ import annotations

import json
import math
import pathlib
import platform
import time
from typing import List, Optional, Sequence, Tuple

BENCH_SCHEMA = 2

#: schema of one ``BENCH_history.jsonl`` line (see :func:`history_entry`).
HISTORY_SCHEMA = 1

PHASES = ("sim", "traces", "multicore")

#: Default benchmark matrix: one streaming, one pointer-chasing, one
#: graph workload — the memory behaviours that stress different parts of
#: the hot path — under the uncoordinated and the Athena-coordinated
#: configurations.
DEFAULT_WORKLOADS = (
    "spec06.libquantum_like.0",   # streaming: prefetcher-heavy
    "spec06.mcf_like.0",          # pointer chase: dependent-load bound
    "ligra.BFS.0",                # graph: irregular + bursty
)
DEFAULT_POLICIES = ("none", "athena")

#: Trace-build phase: every generator family; the acceptance families
#: (streaming/stencil/gups) first so ``--quick`` keeps them.
TRACE_FAMILIES = (
    "streaming", "stencil", "gups", "pointer_chase", "hash_probe",
    "graph", "compute", "phased", "datacenter", "phase_shift",
    "strided_drift", "producer_consumer",
)
TRACE_LENGTH = 100_000
TRACE_SEED = 1234

#: Streaming cell: build + simulate throughput at a trace length the
#: materialized bench path never attempts (4x its largest build; the
#: trace never exists in memory — peak is O(STREAM_BLOCK)).
STREAM_LENGTH = 400_000
STREAM_BLOCK = 4_096

#: Multicore phase: shared-LLC/DRAM mixes at two and four cores,
#: uncoordinated and TLP-coordinated.
DEFAULT_MIXES = (
    (("spec06.libquantum_like.0", "spec06.mcf_like.0"), "none"),
    (("spec06.libquantum_like.0", "spec06.mcf_like.0",
      "ligra.BFS.0", "spec06.xalancbmk_like.0"), "none"),
    (("spec06.libquantum_like.0", "spec06.mcf_like.0",
      "ligra.BFS.0", "spec06.xalancbmk_like.0"), "tlp"),
)

#: Checked-in pre-optimization measurements (recorded on the machine that
#: landed the SoA core), used as the before/after reference in reports.
SEED_BASELINE_PATH = (
    pathlib.Path(__file__).resolve().parents[2]
    / "benchmarks" / "throughput_seed_baseline.json"
)


def _calibrate(repeats: int = 3) -> float:
    """Machine-speed score in million calibration ops/second.

    The loop mixes integer arithmetic, list indexing and branching — the
    same kind of work the interpreter does in the simulator hot path —
    so the score tracks how fast *this* machine runs the simulator, and
    ``ips / score`` is comparable across machines.
    """
    n = 200_000
    best = math.inf
    for _ in range(repeats):
        buf = [0] * 1024
        acc = 0
        t0 = time.perf_counter()
        for i in range(n):
            j = i & 1023
            v = buf[j]
            if v > acc:
                acc = v - acc
            else:
                acc = acc + (i & 7)
            buf[j] = acc & 0xFFFF
        best = min(best, time.perf_counter() - t0)
    return n / best / 1e6


def measure_cell(
    workload: str,
    policy: str,
    design_name: str,
    trace_length: int,
    epoch_length: int,
    repeats: int,
) -> dict:
    """Time cold single-core runs of one (workload, policy) cell.

    The trace and hierarchy are rebuilt for every repeat (a cold run),
    but only ``Simulator.run`` is inside the timer: trace *generation*
    throughput is a separate concern.  Reports the best repeat.
    """
    from repro.engine.jobs import _build_policy
    from repro.experiments.configs import CacheDesign, build_hierarchy
    from repro.sim.simulator import Simulator
    from repro.workloads.suites import build_trace, find_workload

    spec = find_workload(workload)
    design = getattr(CacheDesign, design_name)()
    best = math.inf
    result = None
    for _ in range(repeats):
        trace = build_trace(spec, trace_length)
        hierarchy = build_hierarchy(design)
        pol = _build_policy(policy, None) if policy != "none" else None
        sim = Simulator(trace, hierarchy, policy=pol,
                        epoch_length=epoch_length, warmup_fraction=0.35)
        t0 = time.perf_counter()
        result = sim.run()
        best = min(best, time.perf_counter() - t0)
    return {
        "workload": workload,
        "policy": policy,
        "design": design_name,
        "trace_length": trace_length,
        "measured_instructions": result.instructions,
        "seconds": best,
        "ips": trace_length / best,
    }


def measure_trace_cell(family: str, trace_length: int, repeats: int) -> dict:
    """Time cold trace builds of one generator family, vectorized and
    scalar (the pre-rewrite reference loops) in the same process.

    Calls the generator directly — the trace cache is not involved, so
    this is genuine build throughput.
    """
    from repro.workloads.generators import GENERATORS, scalar_generators

    make = GENERATORS[family]
    make("bench", "bench", TRACE_SEED, 2_000)  # warm module paths
    best = math.inf
    scalar_best = math.inf
    # Interleave the two implementations so transient machine noise hits
    # both sides of the speedup ratio alike.
    for _ in range(repeats):
        t0 = time.perf_counter()
        make("bench", "bench", TRACE_SEED, trace_length)
        best = min(best, time.perf_counter() - t0)
        with scalar_generators():
            t0 = time.perf_counter()
            make("bench", "bench", TRACE_SEED, trace_length)
            scalar_best = min(scalar_best, time.perf_counter() - t0)
    return {
        "family": family,
        "trace_length": trace_length,
        "seconds": best,
        "ips": trace_length / best,
        "scalar_seconds": scalar_best,
        "scalar_ips": trace_length / scalar_best,
        "speedup_vs_scalar": scalar_best / best,
    }


def measure_streaming_cell(trace_length: int, block_size: int) -> dict:
    """Time a streamed cold build and a streamed simulation.

    Bypasses the trace cache (a fresh uncached stream per timing), so
    both numbers are genuine block-at-a-time throughput: the scalar
    emitters behind a bounded pump for the build, the block-windowed
    ``Simulator`` loop for the run.
    """
    from repro.experiments.configs import CacheDesign, build_hierarchy
    from repro.sim.simulator import Simulator
    from repro.workloads.suites import find_workload

    spec = find_workload(DEFAULT_WORKLOADS[0])
    rows = 0
    t0 = time.perf_counter()
    for block in spec.stream(trace_length, block_size):
        rows += len(block)
    build_seconds = time.perf_counter() - t0
    sim = Simulator(
        spec.stream(trace_length, block_size),
        build_hierarchy(CacheDesign.cd1()),
        policy=None,
        epoch_length=max(1, trace_length // 40),
        warmup_fraction=0.2,
    )
    t0 = time.perf_counter()
    sim.run()
    sim_seconds = time.perf_counter() - t0
    return {
        "workload": spec.name,
        "trace_length": rows,
        "block_size": block_size,
        "build_seconds": build_seconds,
        "build_ips": rows / build_seconds,
        "sim_seconds": sim_seconds,
        "sim_ips": rows / sim_seconds,
    }


def measure_multicore_cell(
    workloads: Tuple[str, ...],
    policy: str,
    design_name: str,
    trace_length: int,
    epoch_length: int,
    repeats: int,
) -> dict:
    """Time cold multi-core runs of one (mix, policy) cell.

    Traces are prebuilt (through the trace cache) before the timer
    starts, so the cell isolates the multi-core event loop + shared
    LLC/DRAM machinery.  ``ips`` aggregates over all cores.
    """
    from repro.engine.jobs import MixRequest
    from repro.experiments.configs import CacheDesign
    from repro.workloads.suites import build_trace, find_workload

    specs = tuple(find_workload(name) for name in workloads)
    for spec in specs:
        build_trace(spec, trace_length)
    request = MixRequest(
        workloads=specs,
        trace_length=trace_length,
        design=getattr(CacheDesign, design_name)(),
        policy_name=policy,
        epoch_length=epoch_length,
        warmup_fraction=0.2,
    )
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        request.execute()
        best = min(best, time.perf_counter() - t0)
    total = trace_length * len(specs)
    return {
        "workloads": list(workloads),
        "policy": policy,
        "design": design_name,
        "cores": len(specs),
        "trace_length": trace_length,
        "seconds": best,
        "ips": total / best,
    }


def geomean(values: List[float]) -> float:
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_bench(
    workloads: Tuple[str, ...] = DEFAULT_WORKLOADS,
    policies: Tuple[str, ...] = DEFAULT_POLICIES,
    design: str = "cd1",
    trace_length: int = 24_000,
    epoch_length: int = 600,
    repeats: int = 3,
    quick: bool = False,
    phases: Sequence[str] = PHASES,
    reference_path: Optional[pathlib.Path] = SEED_BASELINE_PATH,
    progress=None,
) -> dict:
    """Run the benchmark matrix; returns the JSON-able report."""
    unknown = [p for p in phases if p not in PHASES]
    if unknown:
        raise KeyError(f"unknown bench phases {unknown}; valid: {PHASES}")
    trace_families = TRACE_FAMILIES
    trace_build_length = TRACE_LENGTH
    mixes = DEFAULT_MIXES
    if quick:
        workloads = workloads[:2]
        trace_length = min(trace_length, 12_000)
        epoch_length = min(epoch_length, 300)
        repeats = 1
        trace_families = TRACE_FAMILIES[:3]
        trace_build_length = 24_000
        mixes = DEFAULT_MIXES[:1]

    from repro.obs.journal import provenance

    calibration = _calibrate(1 if quick else 3)
    report = {
        "schema": BENCH_SCHEMA,
        "unit": "simulated instructions per second (cold Simulator.run)",
        "quick": quick,
        "phases": list(phases),
        "timestamp": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "calibration_mops": calibration,
        # run provenance: which commit (and how clean a tree) produced
        # these numbers, so history entries are attributable.  Resolved
        # against the source tree, not the cwd — the benchmark measures
        # this code wherever the user happens to invoke it from.
        **provenance(pathlib.Path(__file__).resolve().parent),
    }

    cells = []
    if "sim" in phases:
        for workload in workloads:
            for policy in policies:
                if progress is not None:
                    progress(workload, policy)
                cell = measure_cell(workload, policy, design,
                                    trace_length, epoch_length, repeats)
                cell["ips_per_mop"] = cell["ips"] / calibration
                cells.append(cell)
        report["cells"] = cells
        report["geomean_ips"] = geomean([c["ips"] for c in cells])
        report["geomean_ips_per_mop"] = geomean(
            [c["ips_per_mop"] for c in cells]
        )

    if "traces" in phases:
        trace_cells = []
        for family in trace_families:
            if progress is not None:
                progress("trace-build", family)
            cell = measure_trace_cell(
                family, trace_build_length, max(repeats, 5)
            )
            cell["ips_per_mop"] = cell["ips"] / calibration
            trace_cells.append(cell)
        report["trace_cells"] = trace_cells
        report["geomean_trace_build_speedup"] = geomean(
            [c["speedup_vs_scalar"] for c in trace_cells]
        )
        # The fully-vectorizable regular families (deterministic access
        # skeleton; the RNG stream is pure filler), reported separately
        # from the irregular families whose decode is chain-bound.
        regular = [c["speedup_vs_scalar"] for c in trace_cells
                   if c["family"] in TRACE_FAMILIES[:3]]
        if regular:
            report["geomean_trace_build_speedup_regular"] = geomean(regular)

        if progress is not None:
            progress("trace-stream", f"{DEFAULT_WORKLOADS[0]}")
        stream_length = 50_000 if quick else STREAM_LENGTH
        streaming_cell = measure_streaming_cell(stream_length, STREAM_BLOCK)
        streaming_cell["sim_ips_per_mop"] = (
            streaming_cell["sim_ips"] / calibration
        )
        report["streaming_cell"] = streaming_cell
        report["streaming_sim_ips"] = streaming_cell["sim_ips"]

    if "multicore" in phases:
        multicore_cells = []
        for mix_workloads, policy in mixes:
            if progress is not None:
                progress(f"multicore x{len(mix_workloads)}", policy)
            cell = measure_multicore_cell(
                mix_workloads, policy, design,
                trace_length, epoch_length, repeats,
            )
            cell["ips_per_mop"] = cell["ips"] / calibration
            multicore_cells.append(cell)
        report["multicore_cells"] = multicore_cells

    if reference_path is not None and pathlib.Path(reference_path).exists():
        reference = json.loads(pathlib.Path(reference_path).read_text())
        report["reference"] = {
            "path": str(reference_path),
            "geomean_ips": reference.get("geomean_ips"),
            "cells": reference.get("cells"),
        }
        ref_by_key = {
            (c["workload"], c["policy"]): c
            for c in reference.get("cells", ())
        }
        speedups = []
        for cell in cells:
            ref = ref_by_key.get((cell["workload"], cell["policy"]))
            # Only compare like-for-like cells (a --quick run shortens the
            # trace, which shifts ips independently of core speed).
            if (ref and ref.get("ips")
                    and ref.get("trace_length") == cell["trace_length"]):
                cell["speedup_vs_reference"] = cell["ips"] / ref["ips"]
                speedups.append(cell["speedup_vs_reference"])
        if speedups:
            report["geomean_speedup_vs_reference"] = geomean(speedups)
        ref_mc = {
            (tuple(c["workloads"]), c["policy"]): c
            for c in reference.get("multicore_cells", ())
        }
        for cell in report.get("multicore_cells", ()):
            ref = ref_mc.get((tuple(cell["workloads"]), cell["policy"]))
            if (ref and ref.get("ips")
                    and ref.get("trace_length") == cell["trace_length"]):
                cell["speedup_vs_reference"] = cell["ips"] / ref["ips"]
    return report


def check_regression(report: dict, baseline_path: pathlib.Path,
                     tolerance: float = 0.30) -> Tuple[bool, str]:
    """Compare the normalized geomean against a checked-in baseline.

    Returns ``(ok, message)``.  The comparison uses the
    calibration-normalized score so a slower CI machine does not read as
    a regression; ``tolerance`` is the allowed fractional slowdown.
    """
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    base_score = baseline.get("geomean_ips_per_mop")
    if not base_score:
        return False, f"baseline {baseline_path} has no geomean_ips_per_mop"
    if "geomean_ips_per_mop" not in report:
        return False, "report has no single-core cells (ran without " \
                      "--phase sim?); nothing to check"
    # Refuse apples-to-oranges comparisons: the normalized geomean is only
    # meaningful against a baseline measured over the same cell matrix.
    def _matrix(rep):
        return sorted(
            (c["workload"], c["policy"], c["trace_length"])
            for c in rep.get("cells", ())
        )
    if _matrix(report) != _matrix(baseline):
        return False, (
            f"cell matrix mismatch vs {baseline_path} (different workloads, "
            f"policies, or trace lengths — e.g. --quick vs full); "
            f"re-record the baseline with the same bench invocation"
        )
    current = report["geomean_ips_per_mop"]
    floor = base_score * (1.0 - tolerance)
    ratio = current / base_score
    message = (
        f"normalized throughput {current:,.1f} vs baseline "
        f"{base_score:,.1f} ({ratio:.2f}x, floor {floor:,.1f})"
    )
    return current >= floor, message


# ---------------------------------------------------------------------------
# cross-run history (BENCH_history.jsonl, ``repro bench --trend``)
# ---------------------------------------------------------------------------

def history_entry(report: dict) -> dict:
    """The compact cross-run record appended to ``BENCH_history.jsonl``:
    provenance plus the headline geomeans, no per-cell detail."""
    entry = {
        "schema": HISTORY_SCHEMA,
        "timestamp": report.get("timestamp"),
        "quick": report.get("quick"),
        "hostname": report.get("hostname"),
        "git_commit": report.get("git_commit"),
        "git_dirty": report.get("git_dirty"),
        "calibration_mops": report.get("calibration_mops"),
    }
    for key in ("geomean_ips", "geomean_ips_per_mop",
                "geomean_speedup_vs_reference",
                "geomean_trace_build_speedup",
                "streaming_sim_ips"):
        if key in report:
            entry[key] = report[key]
    return entry


def append_history(report: dict, path: pathlib.Path) -> dict:
    """Append one run's :func:`history_entry` to the history JSONL."""
    path = pathlib.Path(path)
    if path.parent != pathlib.Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    entry = history_entry(report)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, separators=(",", ":")) + "\n")
    return entry


def load_history(path: pathlib.Path) -> List[dict]:
    """Parse a history JSONL, oldest first; [] for a missing file.
    Unparseable lines are skipped (a torn tail from a crashed append
    must not orphan the rest of the history)."""
    path = pathlib.Path(path)
    if not path.exists():
        return []
    entries = []
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict):
            entries.append(entry)
    return entries


_SPARK = "▁▂▃▄▅▆▇█"


def _sparkline(values: List[float]) -> str:
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK[3] * len(values)
    scale = (len(_SPARK) - 1) / (hi - lo)
    return "".join(_SPARK[round((v - lo) * scale)] for v in values)


def format_trend(entries: List[dict]) -> str:
    """The cross-run throughput trajectory (``repro bench --trend``).

    Rows are normalized (calibration-relative) geomeans, so runs from
    machines of different speeds still chart one trajectory; a ``*``
    after the commit marks a dirty working tree.
    """
    scored = [e for e in entries if e.get("geomean_ips_per_mop")]
    if not scored:
        return "bench history: no runs with a normalized geomean yet"
    lines = [
        f"bench history: {len(scored)} runs (normalized geomean ips/Mop)",
        "  " + _sparkline([e["geomean_ips_per_mop"] for e in scored]),
        "",
        f"{'commit':12s} {'when':>16s} {'norm':>10s} {'vs prev':>8s}",
    ]
    prev = None
    for entry in scored:
        commit = (entry.get("git_commit") or "?")[:10]
        if entry.get("git_dirty"):
            commit += "*"
        ts = entry.get("timestamp")
        when = time.strftime("%Y-%m-%d %H:%M", time.localtime(ts)) \
            if ts else "-"
        score = entry["geomean_ips_per_mop"]
        delta = f"{score / prev:.2f}x" if prev else "-"
        quick = " (quick)" if entry.get("quick") else ""
        lines.append(
            f"{commit:12s} {when:>16s} {score:>10,.1f} {delta:>8s}{quick}"
        )
        prev = score
    return "\n".join(lines)


def format_report(report: dict) -> str:
    """Human-readable tables for the CLI, one per measured phase."""
    lines = []
    if "cells" in report:
        lines.append(
            f"{'workload':32s} {'policy':8s} {'ips':>12s} "
            f"{'norm':>10s} {'vs seed':>8s}"
        )
        for cell in report["cells"]:
            speedup = cell.get("speedup_vs_reference")
            lines.append(
                f"{cell['workload']:32s} {cell['policy']:8s} "
                f"{cell['ips']:>12,.0f} {cell['ips_per_mop']:>10,.1f} "
                f"{speedup and f'{speedup:.2f}x' or '-':>8s}"
            )
        lines.append(
            f"{'geomean':32s} {'':8s} {report['geomean_ips']:>12,.0f} "
            f"{report['geomean_ips_per_mop']:>10,.1f} "
            + (
                f"{report['geomean_speedup_vs_reference']:>7.2f}x"
                if "geomean_speedup_vs_reference" in report else f"{'-':>8s}"
            )
        )
    if "trace_cells" in report:
        if lines:
            lines.append("")
        lines.append(
            f"{'trace build':32s} {'length':>8s} {'ips':>12s} "
            f"{'norm':>10s} {'vs scalar':>9s}"
        )
        for cell in report["trace_cells"]:
            lines.append(
                f"{cell['family']:32s} {cell['trace_length']:>8d} "
                f"{cell['ips']:>12,.0f} {cell['ips_per_mop']:>10,.1f} "
                f"{cell['speedup_vs_scalar']:>8.2f}x"
            )
        lines.append(
            f"{'geomean build speedup':32s} {'':8s} {'':12s} {'':10s} "
            f"{report['geomean_trace_build_speedup']:>8.2f}x"
        )
    if "streaming_cell" in report:
        cell = report["streaming_cell"]
        if lines:
            lines.append("")
        lines.append(
            f"{'streamed (block ' + str(cell['block_size']) + ')':32s} "
            f"{'length':>8s} {'build ips':>12s} {'sim ips':>12s}"
        )
        lines.append(
            f"{cell['workload']:32s} {cell['trace_length']:>8d} "
            f"{cell['build_ips']:>12,.0f} {cell['sim_ips']:>12,.0f}"
        )
    if "multicore_cells" in report:
        if lines:
            lines.append("")
        lines.append(
            f"{'multicore mix':32s} {'policy':8s} {'ips':>12s} "
            f"{'norm':>10s} {'vs seed':>8s}"
        )
        for cell in report["multicore_cells"]:
            label = f"{cell['cores']}-core mix"
            speedup = cell.get("speedup_vs_reference")
            lines.append(
                f"{label:32s} {cell['policy']:8s} "
                f"{cell['ips']:>12,.0f} {cell['ips_per_mop']:>10,.1f} "
                f"{speedup and f'{speedup:.2f}x' or '-':>8s}"
            )
    lines.append(f"calibration: {report['calibration_mops']:.1f} Mops/s")
    return "\n".join(lines)
