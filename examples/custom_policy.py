#!/usr/bin/env python3
"""Writing your own coordination policy against the public API.

The library's policy interface is deliberately small: implement
``decide(telemetry) -> CoordinationAction`` and you can plug anything into
the simulator — here, a simple "accuracy-gated" policy that enables each
mechanism only while its measured accuracy clears a bar, as a contrast to
Athena's learned policy.

The ``@register_policy`` decorator adds the class to the unified
component registry *without editing any core file*: after that, the
name works everywhere a built-in policy name does — ``RunSpec``,
``make_policy``, spec files, the CLI — as long as this module is
imported first (plugin policies are process-local, so run with the
default serial engine or make the module importable by workers).

Run:
    python examples/custom_policy.py
"""

from repro.api import RunSpec, Session, register_policy
from repro.policies.base import CoordinationAction, CoordinationPolicy
from repro.sim.stats import EpochTelemetry


@register_policy("accuracy_gated",
                 description="enable mechanisms only while accurate")
class AccuracyGatedPolicy(CoordinationPolicy):
    """Enable the prefetcher/OCP only while they are measurably accurate.

    A deliberately simple nonlearning policy: per epoch, compare measured
    accuracies against fixed bars, with a periodic re-probe so a disabled
    mechanism gets a chance to prove itself again.
    """

    PF_ACCURACY_BAR = 0.45
    OCP_ACCURACY_BAR = 0.50
    REPROBE_EVERY = 10

    def __init__(self) -> None:
        super().__init__()
        self._pf_on = True
        self._ocp_on = True
        self._epoch = 0

    def decide(self, telemetry: EpochTelemetry) -> CoordinationAction:
        self._epoch += 1
        reprobe = self._epoch % self.REPROBE_EVERY == 0
        if telemetry.prefetches_issued:
            self._pf_on = telemetry.prefetcher_accuracy >= self.PF_ACCURACY_BAR
        elif reprobe:
            self._pf_on = True
        if telemetry.ocp_predictions:
            self._ocp_on = telemetry.ocp_accuracy >= self.OCP_ACCURACY_BAR
        elif reprobe:
            self._ocp_on = True
        action = CoordinationAction(
            prefetchers_enabled=(self._pf_on,) * self.num_prefetchers,
            ocp_enabled=self.has_ocp and self._ocp_on,
            degree_fraction=1.0,
        )
        self.record(action)
        return action


def main() -> None:
    with Session() as session:
        for workload in ("spec06.libquantum_like.0", "spec06.mcf_like.0",
                         "ligra.BFS.0"):
            print(f"{workload}:")
            for policy in ("naive", "accuracy_gated", "athena"):
                result = session.run(RunSpec(
                    workload=workload, design="cd1", policy=policy,
                    trace_length=16_000, epoch_length=200,
                ))
                print(f"  {policy:<16} ipc={result.ipc:.4f} "
                      f"speedup={result.speedup:.3f}")
            print()


if __name__ == "__main__":
    main()
