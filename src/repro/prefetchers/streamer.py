"""Simple next-line streamer — unit-test baseline, not a paper mechanism.

Detects monotonic streams per 4KB page and prefetches the next ``degree``
lines in stream direction.  Used by tests that need a predictable
prefetcher and by examples that contrast trivial and learned prefetching.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from .base import Prefetcher

_PAGE_SHIFT = 6  # 64 lines = 4KB pages


class StreamPrefetcher(Prefetcher):
    """Per-page unit-stride stream detector."""

    level = "l2c"
    max_degree = 4

    def __init__(self, table_size: int = 64) -> None:
        super().__init__()
        self.table_size = table_size
        self._pages: OrderedDict = OrderedDict()

    def _train_and_predict(self, pc: int, line_addr: int, hit: bool) -> List[int]:
        page = line_addr >> _PAGE_SHIFT
        entry = self._pages.get(page)
        candidates: List[int] = []
        if entry is not None:
            last, direction, confidence = entry
            step = line_addr - last
            if step == direction and step in (-1, 1):
                confidence = min(3, confidence + 1)
            elif step in (-1, 1):
                direction, confidence = step, 1
            else:
                confidence = max(0, confidence - 1)
            if confidence >= 2 and direction:
                candidates = [
                    line_addr + direction * k
                    for k in range(1, self.max_degree + 1)
                ]
            self._pages[page] = (line_addr, direction, confidence)
            self._pages.move_to_end(page)
        else:
            self._pages[page] = (line_addr, 0, 0)
            if len(self._pages) > self.table_size:
                self._pages.popitem(last=False)
        return [c for c in candidates if c >= 0]

    def storage_bits(self) -> int:
        # page tag (36b) + last line (6b) + direction (2b) + confidence (2b)
        return self.table_size * (36 + 6 + 2 + 2)
