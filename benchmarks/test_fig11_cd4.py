"""Figure 11: CD4 (POPET + IPCP at L1D + Pythia at L2C).

Paper shape: the worst Naive degradation of all designs on the adverse
set; TLP cannot throttle the L2C prefetcher and underperforms; Athena
coordinates both levels and wins overall.
"""

from conftest import run_once

from repro.experiments.figures import fig11_cd4

TOL = 0.02


def test_fig11(benchmark, ctx, save_result):
    result = run_once(benchmark, lambda: fig11_cd4(ctx))
    save_result(result)

    overall = result.row("Overall")
    adverse = result.row("Prefetcher-adverse")

    for rival in ("Naive", "TLP", "HPAC", "MAB"):
        assert overall["Athena"] >= overall[rival] - TOL
    # TLP has no control over Pythia at L2C (paper: Athena +19.9% over
    # TLP on the adverse set).  In our substrate Pythia's built-in
    # throttle mutes most of that damage and TLP inherits POPET's
    # near-oracle adverse behaviour, so Athena only has to stay within
    # the oracle-tracking band (see EXPERIMENTS.md, Fig 9/11).
    assert adverse["Athena"] > adverse["TLP"] - 0.07
    # Two uncoordinated prefetchers: Naive's adverse damage is severe.
    assert adverse["Naive"] < 1.0
