"""Cache replacement policies: LRU (L1/L2) and SHiP (LLC, paper Table 5).

SHiP [Wu+, MICRO'11] predicts re-reference behaviour per program-counter
signature.  We implement SHiP-PC over an RRIP backbone, which is the
configuration ChampSim ships and the paper cites for its LLC.
"""

from __future__ import annotations

import abc


class ReplacementPolicy(abc.ABC):
    """Per-cache-instance replacement state machine.

    The cache calls :meth:`on_fill` / :meth:`on_hit` / :meth:`victim`.  All
    methods address a block by ``(set_index, way)``.
    """

    def __init__(self, num_sets: int, ways: int) -> None:
        self.num_sets = num_sets
        self.ways = ways

    @abc.abstractmethod
    def on_hit(self, set_index: int, way: int, pc: int) -> None:
        ...

    @abc.abstractmethod
    def on_fill(self, set_index: int, way: int, pc: int, is_prefetch: bool) -> None:
        ...

    @abc.abstractmethod
    def victim(self, set_index: int) -> int:
        """Pick the way to evict from a full set."""

    def on_eviction(self, set_index: int, way: int, was_reused: bool,
                    fill_pc: int) -> None:
        """Optional feedback hook (used by SHiP's SHCT training)."""


class LruPolicy(ReplacementPolicy):
    """Classic least-recently-used stacks, one per set."""

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._clock = 0
        self._timestamp = [[0] * ways for _ in range(num_sets)]

    def _touch(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._timestamp[set_index][way] = self._clock

    def on_hit(self, set_index: int, way: int, pc: int) -> None:
        self._touch(set_index, way)

    def on_fill(self, set_index: int, way: int, pc: int, is_prefetch: bool) -> None:
        self._touch(set_index, way)

    def victim(self, set_index: int) -> int:
        stamps = self._timestamp[set_index]
        return min(range(self.ways), key=stamps.__getitem__)


class ShipPolicy(ReplacementPolicy):
    """SHiP-PC: signature-based hit prediction over 2-bit RRIP.

    A Signature History Counter Table (SHCT) of saturating counters learns,
    per PC signature, whether blocks inserted by that PC are re-referenced.
    Blocks from "no-reuse" signatures are inserted at distant re-reference
    interval so they are evicted quickly; everything else at intermediate.
    """

    RRPV_MAX = 3
    SHCT_BITS = 3
    SHCT_SIZE = 16384

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._rrpv = [[self.RRPV_MAX] * ways for _ in range(num_sets)]
        self._shct = [1] * self.SHCT_SIZE
        self._sig = [[0] * ways for _ in range(num_sets)]

    @classmethod
    def _signature(cls, pc: int) -> int:
        return (pc ^ (pc >> 14) ^ (pc >> 28)) % cls.SHCT_SIZE

    def on_hit(self, set_index: int, way: int, pc: int) -> None:
        self._rrpv[set_index][way] = 0

    def on_fill(self, set_index: int, way: int, pc: int, is_prefetch: bool) -> None:
        sig = self._signature(pc)
        self._sig[set_index][way] = sig
        predicted_reuse = self._shct[sig] > 0
        if is_prefetch or not predicted_reuse:
            self._rrpv[set_index][way] = self.RRPV_MAX - 1
        else:
            self._rrpv[set_index][way] = 1

    def victim(self, set_index: int) -> int:
        rrpvs = self._rrpv[set_index]
        while True:
            for way in range(self.ways):
                if rrpvs[way] >= self.RRPV_MAX:
                    return way
            for way in range(self.ways):
                rrpvs[way] += 1

    def on_eviction(self, set_index: int, way: int, was_reused: bool,
                    fill_pc: int) -> None:
        sig = self._sig[set_index][way]
        limit = (1 << self.SHCT_BITS) - 1
        if was_reused:
            self._shct[sig] = min(limit, self._shct[sig] + 1)
        else:
            self._shct[sig] = max(0, self._shct[sig] - 1)


def make_replacement(kind: str, num_sets: int, ways: int) -> ReplacementPolicy:
    """Factory keyed by the ``CacheParams.replacement`` string."""
    kind = kind.lower()
    if kind == "lru":
        return LruPolicy(num_sets, ways)
    if kind == "ship":
        return ShipPolicy(num_sets, ways)
    raise ValueError(f"unknown replacement policy {kind!r}")
