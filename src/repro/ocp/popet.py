"""POPET — perceptron-based off-chip predictor (Hermes; Bera+, MICRO 2022).

POPET predicts whether a load will miss the entire on-chip cache hierarchy
using a *hashed perceptron* over five program features.  Each feature
indexes its own weight table; the prediction is positive when the summed
weights exceed an activation threshold.  Training nudges the contributing
weights toward the resolved outcome whenever the prediction was wrong or
the confidence margin was small (perceptron-with-margin update).

We use the five features of the MICRO'22 configuration: PC, PC xor
byte-offset-in-line, PC xor line-offset-in-page, cacheline address, and
the page address, each hashed into a 1K-entry table of 5-bit weights
(4 KB total, Table 8).  The byte-offset feature is load-bearing: it
separates the first touch of a line (which misses) from subsequent
same-line element accesses (which hit) under the same PC.
"""

from __future__ import annotations

from typing import List

from .base import OffChipPredictor

_TABLE_SIZE = 1024
_NUM_FEATURES = 5
_WEIGHT_MAX = 15
_WEIGHT_MIN = -16
_ACTIVATION_THRESHOLD = 2
_TRAINING_MARGIN = 8

_PAGE_SHIFT = 6  # lines per page


def _hash(value: int) -> int:
    value = (value * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 31
    return value % _TABLE_SIZE


class PopetPredictor(OffChipPredictor):
    """Hashed-perceptron off-chip predictor.

    The five hashes and the weight sum are fused into one allocation-free
    pass, and the score computed by :meth:`_predict` is remembered so the
    matching :meth:`train` call for the same load (weights unchanged in
    between) reuses it instead of rehashing.
    """

    def __init__(self) -> None:
        super().__init__()
        self._weights = [[0] * _TABLE_SIZE for _ in range(_NUM_FEATURES)]
        # (pc, line_addr, byte_offset) of the last scored access, or None.
        self._cached_pc = -1
        self._cached_line = -1
        self._cached_offset = -1
        self._cached_indices = (0, 0, 0, 0, 0)
        self._cached_score = 0
        # value -> table index memo for the (pure) feature hash.  All five
        # features share one hash function, so one memo serves them all;
        # repeated PCs/pages in loops hit it constantly.  Bounded by a
        # deterministic clear, so results never depend on its size.
        self._hash_memo: dict = {}

    @staticmethod
    def _feature_indices(pc: int, line_addr: int, byte_offset: int) -> List[int]:
        ip = pc >> 2
        page = line_addr >> _PAGE_SHIFT
        offset = line_addr & ((1 << _PAGE_SHIFT) - 1)
        return [
            _hash(ip),
            _hash((ip << 7) ^ byte_offset),
            _hash((ip << 6) ^ offset),
            _hash(line_addr),
            _hash(page),
        ]

    def _score_and_cache(self, pc: int, line_addr: int,
                         byte_offset: int) -> int:
        """Fused hash + weight sum; caches the result for :meth:`train`.

        ``% _TABLE_SIZE`` is written ``& (_TABLE_SIZE - 1)`` (the table is
        a power of two and the hashes are non-negative, so the values are
        identical).
        """
        w0, w1, w2, w3, w4 = self._weights
        memo = self._hash_memo
        if len(memo) > 65536:
            memo.clear()
        mget = memo.get
        ip = pc >> 2
        i0 = mget(ip)
        if i0 is None:
            v = (ip * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
            memo[ip] = i0 = (v ^ (v >> 31)) & 1023
        key = (ip << 7) ^ byte_offset
        i1 = mget(key)
        if i1 is None:
            v = (key * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
            memo[key] = i1 = (v ^ (v >> 31)) & 1023
        key = (ip << 6) ^ (line_addr & 63)
        i2 = mget(key)
        if i2 is None:
            v = (key * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
            memo[key] = i2 = (v ^ (v >> 31)) & 1023
        # The line-address feature is mostly unique (no memo value).
        v = (line_addr * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        i3 = (v ^ (v >> 31)) & 1023
        page = line_addr >> _PAGE_SHIFT
        i4 = mget(page)
        if i4 is None:
            v = (page * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
            memo[page] = i4 = (v ^ (v >> 31)) & 1023
        score = w0[i0] + w1[i1] + w2[i2] + w3[i3] + w4[i4]
        self._cached_pc = pc
        self._cached_line = line_addr
        self._cached_offset = byte_offset
        self._cached_indices = (i0, i1, i2, i3, i4)
        self._cached_score = score
        return score

    def _score(self, pc: int, line_addr: int, byte_offset: int) -> int:
        return self._score_and_cache(pc, line_addr, byte_offset)

    def _predict(self, pc: int, line_addr: int, byte_offset: int) -> bool:
        return (
            self._score_and_cache(pc, line_addr, byte_offset)
            >= _ACTIVATION_THRESHOLD
        )

    def predict(self, pc: int, line_addr: int, byte_offset: int = 0) -> bool:
        """Fused override of :meth:`OffChipPredictor.predict` (same
        bookkeeping, one call fewer on the per-load path)."""
        self.predictions += 1
        if (self._score_and_cache(pc, line_addr, byte_offset)
                >= _ACTIVATION_THRESHOLD) and self.enabled:
            self.positive_predictions += 1
            return True
        return False

    def train(self, pc: int, line_addr: int, went_offchip: bool,
              byte_offset: int = 0) -> None:
        if (pc == self._cached_pc and line_addr == self._cached_line
                and byte_offset == self._cached_offset):
            # The hierarchy trains with the outcome of the access it just
            # asked a prediction for; weights cannot have changed between
            # the two calls, so the cached score is exact.
            score = self._cached_score
        else:
            score = self._score_and_cache(pc, line_addr, byte_offset)
        predicted = score >= _ACTIVATION_THRESHOLD
        confident = abs(score - _ACTIVATION_THRESHOLD) > _TRAINING_MARGIN
        if predicted == went_offchip and confident:
            return
        step = 1 if went_offchip else -1
        indices = self._cached_indices
        self._cached_pc = -1  # weights change: invalidate the cached score
        for f, i in enumerate(indices):
            w = self._weights[f][i] + step
            self._weights[f][i] = max(_WEIGHT_MIN, min(_WEIGHT_MAX, w))

    def storage_bits(self) -> int:
        return _NUM_FEATURES * _TABLE_SIZE * 5  # 5-bit weights
