"""Shared pytest configuration for the repository test suite."""


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "memory_ceiling: tracemalloc-based peak-memory regression tests "
        "(scaled down by default; set REPRO_MEMTEST_FULL=1 for the full "
        "10x-trace-length run)",
    )
