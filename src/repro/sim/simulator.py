"""Single-core trace-driven simulator with epoch-granularity coordination.

Drives one :class:`~repro.workloads.trace.Trace` through a
:class:`~repro.sim.hierarchy.CacheHierarchy` using the analytical core
timing model.  Every ``epoch_length`` retired instructions the simulator
snapshots the epoch's telemetry (paper Table 1 features + Table 2 reward
metrics) and asks the coordination policy for the next epoch's action —
this is Athena's agent-environment loop (paper Figure 5).

The run loop is chunked: trace positions needing individual handling
(loads, stores, mispredicted branches) are precomputed with numpy, and
the runs of unit-latency instructions between them — nops and correctly
predicted branches — are stepped in bulk through
:meth:`~repro.sim.cpu.CoreModel.run_simple`, with branch counts taken
from a prefix sum.  Chunks additionally break at epoch boundaries and at
the warmup end, so policy decisions and the measurement reset happen at
exactly the same instruction positions (and with bit-identical timing)
as the one-instruction-at-a-time loop they replace.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

import numpy as np

if TYPE_CHECKING:  # imported lazily to avoid a sim <-> policies cycle
    from ..policies.base import CoordinationAction, CoordinationPolicy

from ..workloads.streaming import TraceStream
from ..workloads.trace import (
    FLAG_BRANCH,
    FLAG_DEP,
    FLAG_LOAD,
    FLAG_MISPRED,
    FLAG_STORE,
    Trace,
)
from .cpu import CoreModel
from .hierarchy import CacheHierarchy
from .stats import EpochTelemetry, SimStats


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    workload: str
    stats: SimStats
    instructions: int
    cycles: float
    epochs: List[EpochTelemetry] = field(default_factory=list)
    actions: List["CoordinationAction"] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def action_distribution(self) -> dict:
        """Fraction of epochs spent in each (prefetchers, ocp) combination.

        This is the statistic behind the paper's Figure 17 case study.
        """
        counts: dict = {}
        for action in self.actions:
            key = (action.prefetchers_enabled, action.ocp_enabled)
            counts[key] = counts.get(key, 0) + 1
        total = max(1, len(self.actions))
        return {k: v / total for k, v in counts.items()}


@dataclass
class SimCheckpoint:
    """A re-enterable snapshot of a streamed run at one trace position.

    Captured by ``Simulator.run(checkpoint_at=...)`` after the
    instruction at ``position - 1`` retired (and any warmup/epoch
    transition at that point fired); :meth:`Simulator.resume` re-enters
    the run from here against a fresh block stream, so a long trace's
    measured region is reachable without replaying the prefix trace
    *simulation* (the stream itself seeks via the per-chunk disk tier).
    ``state`` is one deep-copied object graph — hierarchy, core, policy
    and loop counters together — so every shared reference inside it
    (``stats`` *is* ``hierarchy.stats``; the policy is attached to the
    hierarchy) survives intact.
    """

    position: int
    epoch_length: int
    warmup_fraction: float
    state: dict


class Simulator:
    """Runs one workload on one core."""

    def __init__(
        self,
        trace: Union[Trace, TraceStream],
        hierarchy: CacheHierarchy,
        policy: Optional["CoordinationPolicy"] = None,
        epoch_length: int = 250,
        warmup_fraction: float = 0.2,
    ) -> None:
        if epoch_length <= 0:
            raise ValueError("epoch_length must be positive")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        self.trace = trace
        self.hierarchy = hierarchy
        self.policy = policy
        self.epoch_length = epoch_length
        self.warmup_fraction = warmup_fraction
        self.core = CoreModel(hierarchy.params.core)
        #: set by a streamed run when ``checkpoint_at`` is reached
        self.checkpoint: Optional[SimCheckpoint] = None
        if policy is not None:
            policy.attach(hierarchy)

    def run(self, checkpoint_at: Optional[int] = None) -> SimulationResult:
        if isinstance(self.trace, TraceStream):
            return self._run_streamed(checkpoint_at)
        if checkpoint_at is not None:
            raise ValueError("checkpoint_at requires a streamed trace")
        trace = self.trace
        hierarchy = self.hierarchy
        core = self.core
        stats = hierarchy.stats
        policy = self.policy
        epoch_len = self.epoch_length
        dram = hierarchy.dram

        n = len(trace)
        flags_np = trace.flags
        # Convert the numpy trace columns to plain Python scalars once,
        # instead of paying an int(np.int64) conversion per instruction.
        pcs = trace.pcs.tolist()
        addrs = trace.addrs.tolist()
        flags = flags_np.tolist()
        warmup_end = int(n * self.warmup_fraction)

        # Positions that need individual handling; everything between two
        # of them is a run of unit-latency non-memory instructions.
        slow_indices = np.flatnonzero(
            (flags_np & (FLAG_LOAD | FLAG_STORE | FLAG_MISPRED)) != 0
        ).tolist()
        slow_indices.append(n)  # sentinel: no bounds check in the loop
        # branch_prefix[i] = branches among the first i instructions.
        branch_prefix = np.concatenate((
            np.zeros(1, dtype=np.int64),
            np.cumsum((flags_np & FLAG_BRANCH) != 0, dtype=np.int64),
        )).tolist()

        epochs: List[EpochTelemetry] = []
        actions: List["CoordinationAction"] = []
        epoch_index = 0
        epoch_start_snapshot = stats.snapshot()
        epoch_start_cycles = 0.0
        epoch_start_busy = dram.busy_cycles
        epoch_start_kinds = dram.kind_counts()

        warmup_stats_reset_done = warmup_end == 0
        measure_start_cycles = 0.0

        hier_load = hierarchy.load
        hier_store = hierarchy.store
        core_step = core.step
        run_simple = core.run_simple
        # Stable core internals for the inlined begin/finish below (the
        # mutable scalars are read/written through ``core`` so the state
        # stays coherent with run_simple/step).
        ring = core._commit_ring
        rob = core._rob
        inv_width = core._inv_width

        count = stats.instructions  # mirrors stats.instructions
        have_policy = policy is not None
        # Next instruction count at which "count % epoch_len == 0" holds
        # (tracked additively: cheaper than a modulo per instruction).
        next_epoch = count - count % epoch_len + epoch_len
        slow_pos = 0
        i = 0
        while i < n:
            next_slow = slow_indices[slow_pos]
            if next_slow > i:
                # Bulk-run the simple gap, stopping at the next epoch or
                # warmup boundary so the per-instruction checks below fire
                # at exactly the positions the scalar loop checked them.
                limit = next_slow
                if have_policy:
                    boundary = i + next_epoch - count
                    if boundary < limit:
                        limit = boundary
                if not warmup_stats_reset_done:
                    boundary = i + warmup_end - count
                    if boundary < limit:
                        limit = boundary
                k = limit - i
                if k == 1:
                    # Inlined single-step run_simple (1-instruction gaps
                    # between memory accesses are the common case).
                    idx = core._index
                    pos = idx % rob
                    slot_time = ring[pos]
                    dispatch = core._next_dispatch
                    if slot_time > dispatch:
                        dispatch = slot_time
                    ready = dispatch + 1.0
                    commit = core._last_commit + inv_width
                    if ready > commit:
                        commit = ready
                    ring[pos] = commit
                    core._index = idx + 1
                    core._last_commit = commit
                    core._next_dispatch = core._next_dispatch + inv_width
                else:
                    run_simple(k)
                stats.branches += branch_prefix[limit] - branch_prefix[i]
                count += k
                i = limit
            else:
                f = flags[i]
                if f & FLAG_LOAD:
                    # Inlined CoreModel.begin/finish around the load.
                    idx = core._index
                    slot_time = ring[idx % rob]
                    dispatch = core._next_dispatch
                    if slot_time > dispatch:
                        dispatch = slot_time
                    if f & FLAG_DEP:
                        load_ready = core._last_load_ready
                        if load_ready > dispatch:
                            dispatch = load_ready
                    result = hier_load(pcs[i], addrs[i], dispatch)
                    ready = dispatch + result.latency
                    commit = core._last_commit + inv_width
                    if ready > commit:
                        commit = ready
                    ring[idx % rob] = commit
                    core._index = idx + 1
                    core._last_commit = commit
                    core._next_dispatch = core._next_dispatch + inv_width
                    core._last_load_ready = ready
                    stats.loads += 1
                elif f & FLAG_STORE:
                    idx = core._index
                    slot_time = ring[idx % rob]
                    dispatch = core._next_dispatch
                    if slot_time > dispatch:
                        dispatch = slot_time
                    latency = hier_store(pcs[i], addrs[i], dispatch)
                    ready = dispatch + latency
                    commit = core._last_commit + inv_width
                    if ready > commit:
                        commit = ready
                    ring[idx % rob] = commit
                    core._index = idx + 1
                    core._last_commit = commit
                    core._next_dispatch = core._next_dispatch + inv_width
                    stats.stores += 1
                elif f & FLAG_BRANCH:
                    mispred = bool(f & FLAG_MISPRED)
                    core_step(1.0, False, False, mispred)
                    stats.branches += 1
                    if mispred:
                        stats.mispredicted_branches += 1
                else:
                    core_step()
                count += 1
                i += 1
                slow_pos += 1

            if not warmup_stats_reset_done and count >= warmup_end:
                # End of warm-up: caches and predictors stay warm, but the
                # reported statistics start here (paper §6.1 methodology).
                measure_start_cycles = core.cycles
                self._reset_measured_stats(stats, hierarchy)
                warmup_stats_reset_done = True
                count = stats.instructions
                next_epoch = 0  # count just reset: 0 % epoch_len == 0 fires
                epoch_start_snapshot = stats.snapshot()
                epoch_start_cycles = core.cycles
                epoch_start_busy = dram.busy_cycles
                epoch_start_kinds = dram.kind_counts()

            if have_policy and count == next_epoch:
                # ``stats.instructions`` is maintained lazily (local
                # ``count`` is the live value); sync it where it is read.
                stats.instructions = count
                telemetry = self._build_telemetry(
                    epoch_index,
                    stats,
                    epoch_start_snapshot,
                    core.cycles - epoch_start_cycles,
                    dram.busy_cycles - epoch_start_busy,
                    epoch_start_kinds,
                )
                action = policy.decide(telemetry)
                self._apply_action(action)
                epochs.append(telemetry)
                actions.append(action)
                epoch_index += 1
                next_epoch += epoch_len
                epoch_start_snapshot = stats.snapshot()
                epoch_start_cycles = core.cycles
                epoch_start_busy = dram.busy_cycles
                epoch_start_kinds = dram.kind_counts()

        stats.instructions = count
        measured_cycles = core.cycles - measure_start_cycles
        stats.cycles = measured_cycles
        return SimulationResult(
            workload=trace.name,
            stats=stats,
            instructions=stats.instructions,
            cycles=measured_cycles,
            epochs=epochs,
            actions=actions,
        )

    # ------------------------------------------------------------ streamed run

    def _run_streamed(
        self, checkpoint_at: Optional[int] = None
    ) -> SimulationResult:
        """Block-at-a-time variant of :meth:`run`.

        Identical loop body, applied per block with a local index: the
        materialized loop's chunk seams (slow positions, epoch
        boundaries, warmup end) all express their limits as offsets from
        the running instruction counter, so adding block edges as extra
        chunk breaks changes nothing — ``run_simple(k1); run_simple(k2)``
        is bit-identical to ``run_simple(k1 + k2)``.
        """
        if checkpoint_at is not None and \
                not 0 < checkpoint_at <= len(self.trace):
            raise ValueError("checkpoint_at must be in (0, len(trace)]")
        stats = self.hierarchy.stats
        dram = self.hierarchy.dram
        count = stats.instructions
        state = {
            "count": count,
            "next_epoch": count - count % self.epoch_length
            + self.epoch_length,
            "epoch_index": 0,
            "epochs": [],
            "actions": [],
            "warmup_stats_reset_done":
                int(len(self.trace) * self.warmup_fraction) == 0,
            "measure_start_cycles": 0.0,
            "epoch_start_snapshot": stats.snapshot(),
            "epoch_start_cycles": 0.0,
            "epoch_start_busy": dram.busy_cycles,
            "epoch_start_kinds": dram.kind_counts(),
        }
        return self._stream_loop(iter(self.trace), state, checkpoint_at)

    @classmethod
    def resume(
        cls, stream: TraceStream, checkpoint: SimCheckpoint
    ) -> SimulationResult:
        """Finish a streamed run from a :class:`SimCheckpoint`.

        The checkpoint's state graph is deep-copied again, so the same
        checkpoint can be resumed repeatedly (each resume gets private
        mutable state).  The stream only needs to cover positions from
        ``checkpoint.position`` on — with a seekable stream (the
        per-chunk disk tier) the prefix is never even read.
        """
        state = copy.deepcopy(checkpoint.state)
        sim = cls.__new__(cls)
        sim.trace = stream
        sim.hierarchy = state.pop("hierarchy")
        sim.policy = state.pop("policy")
        sim.core = state.pop("core")
        sim.epoch_length = checkpoint.epoch_length
        sim.warmup_fraction = checkpoint.warmup_fraction
        sim.checkpoint = None
        return sim._stream_loop(
            stream.iter_from(checkpoint.position), state, None
        )

    def _stream_loop(
        self,
        blocks,
        st: dict,
        checkpoint_at: Optional[int],
    ) -> SimulationResult:
        stream = self.trace
        hierarchy = self.hierarchy
        core = self.core
        stats = hierarchy.stats
        policy = self.policy
        epoch_len = self.epoch_length
        dram = hierarchy.dram

        n = len(stream)
        warmup_end = int(n * self.warmup_fraction)

        epochs: List[EpochTelemetry] = st["epochs"]
        actions: List["CoordinationAction"] = st["actions"]
        epoch_index = st["epoch_index"]
        epoch_start_snapshot = st["epoch_start_snapshot"]
        epoch_start_cycles = st["epoch_start_cycles"]
        epoch_start_busy = st["epoch_start_busy"]
        epoch_start_kinds = st["epoch_start_kinds"]
        warmup_stats_reset_done = st["warmup_stats_reset_done"]
        measure_start_cycles = st["measure_start_cycles"]
        count = st["count"]
        next_epoch = st["next_epoch"]
        have_policy = policy is not None
        captured = checkpoint_at is None

        hier_load = hierarchy.load
        hier_store = hierarchy.store
        core_step = core.step
        run_simple = core.run_simple
        ring = core._commit_ring
        rob = core._rob
        inv_width = core._inv_width

        for block in blocks:
            base = block.start
            flags_np = block.flags
            pcs = block.pcs.tolist()
            addrs = block.addrs.tolist()
            flags = flags_np.tolist()
            bn = len(flags)
            slow_indices = np.flatnonzero(
                (flags_np & (FLAG_LOAD | FLAG_STORE | FLAG_MISPRED)) != 0
            ).tolist()
            slow_indices.append(bn)
            branch_prefix = np.concatenate((
                np.zeros(1, dtype=np.int64),
                np.cumsum((flags_np & FLAG_BRANCH) != 0, dtype=np.int64),
            )).tolist()
            slow_pos = 0
            il = 0
            while il < bn:
                next_slow = slow_indices[slow_pos]
                if next_slow > il:
                    limit = next_slow
                    if have_policy:
                        boundary = il + next_epoch - count
                        if boundary < limit:
                            limit = boundary
                    if not warmup_stats_reset_done:
                        boundary = il + warmup_end - count
                        if boundary < limit:
                            limit = boundary
                    if not captured:
                        boundary = checkpoint_at - base
                        if boundary < limit:
                            limit = boundary
                    k = limit - il
                    if k == 1:
                        idx = core._index
                        pos = idx % rob
                        slot_time = ring[pos]
                        dispatch = core._next_dispatch
                        if slot_time > dispatch:
                            dispatch = slot_time
                        ready = dispatch + 1.0
                        commit = core._last_commit + inv_width
                        if ready > commit:
                            commit = ready
                        ring[pos] = commit
                        core._index = idx + 1
                        core._last_commit = commit
                        core._next_dispatch = core._next_dispatch + inv_width
                    else:
                        run_simple(k)
                    stats.branches += branch_prefix[limit] \
                        - branch_prefix[il]
                    count += k
                    il = limit
                else:
                    f = flags[il]
                    if f & FLAG_LOAD:
                        idx = core._index
                        slot_time = ring[idx % rob]
                        dispatch = core._next_dispatch
                        if slot_time > dispatch:
                            dispatch = slot_time
                        if f & FLAG_DEP:
                            load_ready = core._last_load_ready
                            if load_ready > dispatch:
                                dispatch = load_ready
                        result = hier_load(pcs[il], addrs[il], dispatch)
                        ready = dispatch + result.latency
                        commit = core._last_commit + inv_width
                        if ready > commit:
                            commit = ready
                        ring[idx % rob] = commit
                        core._index = idx + 1
                        core._last_commit = commit
                        core._next_dispatch = core._next_dispatch + inv_width
                        core._last_load_ready = ready
                        stats.loads += 1
                    elif f & FLAG_STORE:
                        idx = core._index
                        slot_time = ring[idx % rob]
                        dispatch = core._next_dispatch
                        if slot_time > dispatch:
                            dispatch = slot_time
                        latency = hier_store(pcs[il], addrs[il], dispatch)
                        ready = dispatch + latency
                        commit = core._last_commit + inv_width
                        if ready > commit:
                            commit = ready
                        ring[idx % rob] = commit
                        core._index = idx + 1
                        core._last_commit = commit
                        core._next_dispatch = core._next_dispatch + inv_width
                        stats.stores += 1
                    elif f & FLAG_BRANCH:
                        mispred = bool(f & FLAG_MISPRED)
                        core_step(1.0, False, False, mispred)
                        stats.branches += 1
                        if mispred:
                            stats.mispredicted_branches += 1
                    else:
                        core_step()
                    count += 1
                    il += 1
                    slow_pos += 1

                if not warmup_stats_reset_done and count >= warmup_end:
                    measure_start_cycles = core.cycles
                    self._reset_measured_stats(stats, hierarchy)
                    warmup_stats_reset_done = True
                    count = stats.instructions
                    next_epoch = 0
                    epoch_start_snapshot = stats.snapshot()
                    epoch_start_cycles = core.cycles
                    epoch_start_busy = dram.busy_cycles
                    epoch_start_kinds = dram.kind_counts()

                if have_policy and count == next_epoch:
                    stats.instructions = count
                    telemetry = self._build_telemetry(
                        epoch_index,
                        stats,
                        epoch_start_snapshot,
                        core.cycles - epoch_start_cycles,
                        dram.busy_cycles - epoch_start_busy,
                        epoch_start_kinds,
                    )
                    action = policy.decide(telemetry)
                    self._apply_action(action)
                    epochs.append(telemetry)
                    actions.append(action)
                    epoch_index += 1
                    next_epoch += epoch_len
                    epoch_start_snapshot = stats.snapshot()
                    epoch_start_cycles = core.cycles
                    epoch_start_busy = dram.busy_cycles
                    epoch_start_kinds = dram.kind_counts()

                if not captured and base + il == checkpoint_at:
                    captured = True
                    stats.instructions = count
                    self.checkpoint = SimCheckpoint(
                        position=checkpoint_at,
                        epoch_length=epoch_len,
                        warmup_fraction=self.warmup_fraction,
                        state=copy.deepcopy({
                            "hierarchy": hierarchy,
                            "core": core,
                            "policy": policy,
                            "count": count,
                            "next_epoch": next_epoch,
                            "epoch_index": epoch_index,
                            "epochs": epochs,
                            "actions": actions,
                            "warmup_stats_reset_done":
                                warmup_stats_reset_done,
                            "measure_start_cycles": measure_start_cycles,
                            "epoch_start_snapshot": epoch_start_snapshot,
                            "epoch_start_cycles": epoch_start_cycles,
                            "epoch_start_busy": epoch_start_busy,
                            "epoch_start_kinds": epoch_start_kinds,
                        }),
                    )

        stats.instructions = count
        measured_cycles = core.cycles - measure_start_cycles
        stats.cycles = measured_cycles
        return SimulationResult(
            workload=stream.name,
            stats=stats,
            instructions=stats.instructions,
            cycles=measured_cycles,
            epochs=epochs,
            actions=actions,
        )

    # ------------------------------------------------------------------ helpers

    @staticmethod
    def _reset_measured_stats(
        stats: SimStats, hierarchy: Optional[CacheHierarchy] = None,
        include_shared_caches: bool = True,
    ) -> None:
        """Zero every measured counter at the warmup boundary.

        Also restarts the per-:class:`~repro.sim.cache.Cache` hit/miss
        counters (when a ``hierarchy`` is given) so post-warmup
        ``hit_rate`` reflects the measured region only.
        """
        preserved_instructions = 0  # measurement restarts from zero
        fresh = SimStats()
        for f in fields(fresh):
            setattr(stats, f.name, getattr(fresh, f.name))
        stats.instructions = preserved_instructions
        if hierarchy is not None:
            hierarchy.reset_cache_hit_counters(
                include_shared=include_shared_caches
            )

    def _build_telemetry(
        self,
        epoch_index: int,
        stats: SimStats,
        start: SimStats,
        cycles: float,
        busy_cycles: float,
        start_kinds: Tuple[int, int, int, int],
    ) -> EpochTelemetry:
        delta = stats.delta_from(start)
        demand, prefetch, ocp, writeback = (
            cur - prev
            for cur, prev in zip(self.hierarchy.dram.kind_counts(),
                                 start_kinds)
        )
        total = demand + prefetch + ocp + writeback
        total_dram = max(1, total)
        pf_acc = (
            delta.prefetches_useful / delta.prefetches_issued
            if delta.prefetches_issued
            else 0.0
        )
        ocp_acc = (
            delta.ocp_correct / delta.ocp_predictions
            if delta.ocp_predictions
            else 0.0
        )
        demand_misses = max(1, delta.llc_misses)
        return EpochTelemetry(
            epoch_index=epoch_index,
            instructions=delta.instructions,
            cycles=cycles,
            loads=delta.loads,
            mispredicted_branches=delta.mispredicted_branches,
            llc_misses=delta.llc_misses,
            llc_miss_latency_sum=delta.llc_miss_latency_sum,
            prefetcher_accuracy=min(1.0, pf_acc),
            ocp_accuracy=min(1.0, ocp_acc),
            bandwidth_usage=min(1.0, busy_cycles / cycles) if cycles else 0.0,
            cache_pollution=min(1.0, delta.pollution_misses / demand_misses),
            prefetch_bandwidth_share=prefetch / total_dram,
            ocp_bandwidth_share=ocp / total_dram,
            demand_bandwidth_share=demand / total_dram,
            prefetches_issued=delta.prefetches_issued,
            ocp_predictions=delta.ocp_predictions,
            dram_requests=total,
        )

    def _apply_action(self, action: "CoordinationAction") -> None:
        self.hierarchy.set_prefetchers_enabled(action.prefetchers_enabled)
        self.hierarchy.set_ocp_enabled(action.ocp_enabled)
        self.hierarchy.set_degree_fraction(action.degree_fraction)
