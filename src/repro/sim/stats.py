"""Statistics plumbing for the simulator.

Two layers of counters exist:

* :class:`SimStats` — cumulative, exact counters for the whole simulation
  (used for reporting, IPC, the StaticBest oracle, and Figures 20a/20b).
* :class:`EpochTelemetry` — the per-epoch snapshot handed to coordination
  policies.  This mirrors the information Athena's hardware observes during
  one epoch (paper §4.1/§4.3): feature numerators/denominators plus the
  reward-constituent metrics of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass(slots=True)
class SimStats:
    """Cumulative simulation counters (exact, not Bloom-approximated)."""

    instructions: int = 0
    cycles: float = 0.0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    mispredicted_branches: int = 0

    l1d_hits: int = 0
    l1d_misses: int = 0
    l2c_hits: int = 0
    l2c_misses: int = 0
    llc_hits: int = 0
    llc_misses: int = 0
    llc_miss_latency_sum: float = 0.0

    dram_demand_requests: int = 0
    dram_prefetch_requests: int = 0
    dram_ocp_requests: int = 0
    dram_writeback_requests: int = 0

    prefetches_issued: int = 0
    prefetches_useful: int = 0
    prefetch_fills_offchip: int = 0
    prefetch_fills_offchip_useless: int = 0
    prefetches_useful_offchip: int = 0
    prefetch_fills_offchip_l1d: int = 0
    prefetch_fills_offchip_l2c: int = 0
    prefetches_useful_offchip_l1d: int = 0
    prefetches_useful_offchip_l2c: int = 0
    pollution_misses: int = 0

    ocp_predictions: int = 0
    ocp_correct: int = 0
    ocp_saved_cycles: float = 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def dram_requests(self) -> int:
        return (
            self.dram_demand_requests
            + self.dram_prefetch_requests
            + self.dram_ocp_requests
            + self.dram_writeback_requests
        )

    @property
    def llc_mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.llc_misses / self.instructions

    @property
    def avg_llc_miss_latency(self) -> float:
        if not self.llc_misses:
            return 0.0
        return self.llc_miss_latency_sum / self.llc_misses

    @property
    def prefetch_accuracy(self) -> float:
        if not self.prefetches_issued:
            return 0.0
        return self.prefetches_useful / self.prefetches_issued

    @property
    def offchip_fill_inaccuracy(self) -> float:
        """Fraction of off-chip prefetch fills never demanded (Figure 3)."""
        if not self.prefetch_fills_offchip:
            return 0.0
        useless = self.prefetch_fills_offchip - self.prefetches_useful_offchip
        return max(0.0, useless / self.prefetch_fills_offchip)

    def offchip_fill_inaccuracy_at(self, level: str) -> float:
        """Per-level Figure 3 metric: fraction of off-chip fills into
        ``level`` that were never demanded *during residency at that
        level* — the paper's exact definition of an inaccurate fill."""
        if level == "l1d":
            fills = self.prefetch_fills_offchip_l1d
            useful = self.prefetches_useful_offchip_l1d
        elif level == "l2c":
            fills = self.prefetch_fills_offchip_l2c
            useful = self.prefetches_useful_offchip_l2c
        else:
            raise ValueError(f"no per-level tracking for {level!r}")
        if not fills:
            return 0.0
        return max(0.0, (fills - useful) / fills)

    @property
    def ocp_accuracy(self) -> float:
        if not self.ocp_predictions:
            return 0.0
        return self.ocp_correct / self.ocp_predictions

    def snapshot(self) -> "SimStats":
        return SimStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def delta_from(self, earlier: "SimStats") -> "SimStats":
        """Counters accumulated since ``earlier`` (an older snapshot)."""
        return SimStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )


@dataclass
class EpochTelemetry:
    """Per-epoch observation handed to a coordination policy.

    Feature values follow the measurement definitions of paper Table 1; the
    reward-constituent metrics follow Table 2.
    """

    epoch_index: int = 0
    instructions: int = 0
    cycles: float = 0.0
    loads: int = 0
    mispredicted_branches: int = 0
    llc_misses: int = 0
    llc_miss_latency_sum: float = 0.0

    prefetcher_accuracy: float = 0.0
    ocp_accuracy: float = 0.0
    bandwidth_usage: float = 0.0
    cache_pollution: float = 0.0
    prefetch_bandwidth_share: float = 0.0
    ocp_bandwidth_share: float = 0.0
    demand_bandwidth_share: float = 0.0

    prefetches_issued: int = 0
    ocp_predictions: int = 0
    dram_requests: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def feature(self, name: str) -> float:
        """Look up one of the seven candidate state features by name."""
        mapping = {
            "prefetcher_accuracy": self.prefetcher_accuracy,
            "ocp_accuracy": self.ocp_accuracy,
            "bandwidth_usage": self.bandwidth_usage,
            "cache_pollution": self.cache_pollution,
            "prefetch_bandwidth": self.prefetch_bandwidth_share,
            "ocp_bandwidth": self.ocp_bandwidth_share,
            "demand_bandwidth": self.demand_bandwidth_share,
        }
        try:
            return mapping[name]
        except KeyError:
            raise KeyError(
                f"unknown feature {name!r}; valid: {sorted(mapping)}"
            ) from None


#: The seven candidate features of paper Table 1, in paper order.
CANDIDATE_FEATURES = (
    "prefetcher_accuracy",
    "ocp_accuracy",
    "bandwidth_usage",
    "cache_pollution",
    "prefetch_bandwidth",
    "ocp_bandwidth",
    "demand_bandwidth",
)

#: The four features selected by the paper's automated DSE (Table 3).
SELECTED_FEATURES = (
    "prefetcher_accuracy",
    "ocp_accuracy",
    "bandwidth_usage",
    "cache_pollution",
)
