"""Process-pool scheduler for simulation requests.

Executes request misses in worker processes via
:class:`concurrent.futures.ProcessPoolExecutor`, deduplicating in-flight
requests by content key (two batches racing for the same key share one
future) and streaming completion progress to an optional callback.

Workers return the *serialized* result payload rather than the live
object: the parent decodes it through the same codec the store uses, so
parallel and store-replayed runs traverse one code path and stay
bit-identical to serial execution.

Failure is a first-class outcome here, not an exception path: a batch
is driven by :class:`BatchExecution`, which turns worker exceptions,
hung attempts (per-request wall-clock timeout), dead worker processes
(``BrokenProcessPool`` → pool rebuild + resubmission), and corrupt
payloads into :class:`~repro.engine.faults.RequestFailure` observations
with retry/backoff discipline from an
:class:`~repro.engine.faults.ExecutionPolicy`.  When the pool cannot be
revived within its rebuild budget it degrades to inline single-process
execution instead of giving up.
"""

from __future__ import annotations

import heapq
import os
import time
from collections import deque
from concurrent.futures import (CancelledError, FIRST_COMPLETED, Future,
                                ProcessPoolExecutor, wait)
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import (Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

from ..obs.spans import collector, set_enabled, spans_enabled, worker_id
from .faults import ExecutionPolicy, FaultPlan, RequestFailure
from .jobs import Request, encode_result
from .store import StoreDecodeError

#: progress callback: (completed_count, total, request_key)
ProgressFn = Callable[[int, int, str], None]

#: event stream item: ("ok", key, result) or ("fail", key, RequestFailure)
Event = Tuple[str, str, object]

#: failure callback: (failure, retrying) — retrying=True means the
#: request will be attempted again, False means the failure is terminal.
FailureFn = Callable[[RequestFailure, bool], None]

#: rebuild callback: (total_rebuilds, degraded)
RebuildFn = Callable[[int, bool], None]


def _execute_request(request: Request, telemetry: bool = False,
                     faults: Optional[FaultPlan] = None,
                     attempt: int = 0, inline: bool = False) -> dict:
    """Worker entry point: run the simulation, return its payload.

    The worker's observability delta rides back on the payload under
    ``_obs`` (stripped by the engine before the payload is stored or
    decoded): the compiled-trace-cache hit/build counts always, plus —
    when ``telemetry`` is on — the request's phase spans, worker id,
    and wall time, so parent-side counters, spans, and journal events
    see work that happened in worker processes.

    With a :class:`FaultPlan`, the plan's verdict for this
    (key, attempt) is applied here: pre-execution faults (crash /
    raise / hang) before the simulation runs, payload corruption after.
    ``inline=True`` marks parent-process execution, where a ``crash``
    fault downgrades to a raise so the parent survives to retry.
    """
    if faults is not None:
        faults.pre_execute(request.key(), attempt, inline)
    from ..workloads.tracecache import trace_cache

    stats = trace_cache().stats
    hits0, disk0, builds0 = stats.hits, stats.disk_hits, stats.builds
    if telemetry:
        # The parent's enablement travels as this submit-time argument
        # (environment inheritance would break under spawn); idempotent
        # in the parent's own inline-execution path.
        set_enabled(True)
        col = collector()
        mark = len(col)
        with col.span("request") as request_span:
            payload = encode_result(request.execute())
        obs = {
            # take_since: exactly this request's spans, leaving anything
            # recorded before (e.g. parent spans inherited via fork).
            "spans": col.take_since(mark),
            "wall_s": request_span["wall_s"],
            "worker": request_span["worker"],
        }
    else:
        payload = encode_result(request.execute())
        obs = {}
    obs["trace_cache"] = {
        "hits": stats.hits + stats.disk_hits - hits0 - disk0,
        "builds": stats.builds - builds0,
    }
    if faults is not None:
        payload = faults.post_execute(request.key(), attempt, payload)
    payload["_obs"] = obs
    return payload


class SimulationPool:
    """Deduplicating, self-healing ProcessPoolExecutor wrapper."""

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = jobs if jobs else (os.cpu_count() or 1)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._inflight: Dict[str, Future] = {}
        #: times the worker pool was torn down and recreated.
        self.rebuilds = 0
        #: True once the rebuild budget is spent: submissions execute
        #: inline in the parent process instead of fanning out.
        self.degraded = False

    @property
    def executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def rebuild(self) -> None:
        """Tear down the executor (killing workers) and start fresh.

        Every in-flight future belonged to the dead executor, so the
        in-flight map is cleared too — a stale future bound to a broken
        pool must never be handed out by a later :meth:`submit`.
        """
        if self._executor is not None:
            processes = getattr(self._executor, "_processes", None) or {}
            for proc in list(processes.values()):
                try:
                    proc.kill()
                except (OSError, ValueError):
                    pass  # already dead or already closed
            try:
                self._executor.shutdown(wait=False, cancel_futures=True)
            # The executor is known-broken here; shutdown of a wedged
            # pool can raise almost anything and teardown must proceed.
            except Exception:  # repro: allow(no-bare-except)
                pass
            self._executor = None
        self._inflight.clear()
        self.rebuilds += 1

    def submit(self, key: str, request: Request,
               telemetry: Optional[bool] = None, *,
               faults: Optional[FaultPlan] = None,
               attempt: int = 0) -> Future:
        """Submit one request, reusing any in-flight future for ``key``.

        In degraded mode the request executes inline (parent process)
        and the returned future is already completed.
        """
        future = self._inflight.get(key)
        if future is not None and not future.done():
            return future
        if telemetry is None:
            telemetry = spans_enabled()
        if self.degraded:
            future = Future()
            try:
                payload = _execute_request(request, telemetry, faults,
                                           attempt, inline=True)
            except Exception as exc:
                future.set_exception(exc)
            else:
                future.set_result(payload)
        else:
            try:
                future = self.executor.submit(
                    _execute_request, request, telemetry, faults, attempt)
            except BrokenProcessPool:
                # The executor died between batches; heal and resubmit.
                self.rebuild()
                future = self.executor.submit(
                    _execute_request, request, telemetry, faults, attempt)
        self._inflight[key] = future
        return future

    def peek(self, key: str) -> Optional[Future]:
        """The in-flight future for ``key``, if any (no submission)."""
        return self._inflight.get(key)

    def discard(self, key: str) -> None:
        """Drop ``key`` from the in-flight map (its result was consumed).

        Callers must discard every future they take a result from: a
        *done* future left in the map would be re-executed by the next
        :meth:`submit` of the same key.
        """
        self._inflight.pop(key, None)

    def drain_done(self) -> List[Tuple[str, Future]]:
        """Pop and return every completed in-flight (key, future) pair.

        Lets the engine harvest results whose consumer abandoned a
        streaming iterator: the work already happened in a worker, so
        recording it beats re-executing it later.
        """
        done = [
            (key, future) for key, future in self._inflight.items()
            if future.done()
        ]
        for key, _ in done:
            self._inflight.pop(key, None)
        return done

    def run_batch(
        self,
        keyed_requests: Sequence[Tuple[str, Request]],
        progress: Optional[ProgressFn] = None,
        *,
        policy: Optional[ExecutionPolicy] = None,
        faults: Optional[FaultPlan] = None,
        on_result: Optional[Callable[[str, dict], object]] = None,
        on_failure: Optional[FailureFn] = None,
        on_rebuild: Optional[RebuildFn] = None,
    ) -> Tuple[Dict[str, object], List[RequestFailure]]:
        """Execute a batch; returns (key→result, terminal failures).

        Duplicate keys inside the batch (or racing with another batch)
        are executed once.  ``on_result(key, payload)`` converts each
        successful payload (the engine records it to memo/store here);
        without it the raw payload is returned.  Failures are retried
        per ``policy``; only requests whose retries are exhausted (or
        were cancelled by fail-fast) appear in the failure list — and
        by then every successful sibling has already been delivered
        through ``on_result``.
        """
        execution = BatchExecution(self, keyed_requests, policy=policy,
                                   faults=faults, on_result=on_result,
                                   on_failure=on_failure,
                                   on_rebuild=on_rebuild)
        results: Dict[str, object] = {}
        failures: List[RequestFailure] = []
        try:
            for kind, key, value in execution.events():
                if kind == "ok":
                    results[key] = value
                    if progress is not None:
                        progress(len(results), execution.total, key)
                else:
                    failures.append(value)
        finally:
            execution.finalize()
        return results, failures

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._inflight.clear()

    def __enter__(self) -> "SimulationPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BatchExecution:
    """Drives one batch of requests through the pool with resilience.

    Submission starts eagerly in the constructor (so workers overlap
    with whatever the caller does before consuming events), bounded by
    a submission window of ``pool.jobs`` when a per-request timeout is
    active — a queued-but-unstarted task must not burn its wall-clock
    budget waiting for a worker.

    :meth:`events` yields ``("ok", key, result)`` as requests complete
    and ``("fail", key, failure)`` for *terminal* failures only;
    retried failures are reported through the ``on_failure`` callback
    (``retrying=True``) but never yielded.  The owner must call
    :meth:`finalize` when done (normally or not): it records any
    completed-but-unconsumed futures through ``on_result`` and leaves
    genuinely pending ones in the pool's in-flight map for a later
    harvest.
    """

    def __init__(
        self,
        pool: SimulationPool,
        keyed_requests: Sequence[Tuple[str, Request]],
        *,
        policy: Optional[ExecutionPolicy] = None,
        faults: Optional[FaultPlan] = None,
        on_result: Optional[Callable[[str, dict], object]] = None,
        on_failure: Optional[FailureFn] = None,
        on_rebuild: Optional[RebuildFn] = None,
    ) -> None:
        self.pool = pool
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.faults = faults
        self.on_result = on_result
        self.on_failure = on_failure
        self.on_rebuild = on_rebuild
        self.requests: Dict[str, Request] = {}
        for key, request in keyed_requests:
            self.requests.setdefault(key, request)
        self.total = len(self.requests)
        #: attempts *started* per key (1 after the first submission).
        self.attempts: Dict[str, int] = {key: 0 for key in self.requests}
        self.queue: deque = deque(self.requests)
        self.retry_at: List[Tuple[float, str]] = []  # heap: (due, key)
        self.futures: Dict[Future, str] = {}
        self.deadlines: Dict[Future, float] = {}
        self.failures: List[RequestFailure] = []
        self.cancelled = False
        self._finalized = False
        self._pump()

    # -- scheduling --------------------------------------------------------

    @property
    def _window(self) -> Optional[int]:
        if self.policy.timeout_s is None:
            return None
        return max(1, self.pool.jobs)

    def _pump(self) -> None:
        """Move due retries into the queue; fill the submission window."""
        now = time.monotonic()
        while self.retry_at and self.retry_at[0][0] <= now:
            _, key = heapq.heappop(self.retry_at)
            self.queue.append(key)
        window = self._window
        while self.queue and (window is None
                              or len(self.futures) < window):
            key = self.queue.popleft()
            attempt = self.attempts[key]
            self.attempts[key] = attempt + 1
            future = self.pool.submit(key, self.requests[key],
                                      faults=self.faults, attempt=attempt)
            self.futures[future] = key
            if self.policy.timeout_s is not None:
                self.deadlines[future] = (time.monotonic()
                                          + self.policy.timeout_s)

    def _rebuild(self) -> None:
        self.pool.rebuild()
        if self.pool.rebuilds > self.policy.max_rebuilds:
            self.pool.degraded = True
        if self.on_rebuild is not None:
            self.on_rebuild(self.pool.rebuilds, self.pool.degraded)

    # -- failure bookkeeping -----------------------------------------------

    def _fail(self, key: str, kind: str, error: str,
              exc: Optional[BaseException] = None,
              worker: Optional[str] = None) -> List[Event]:
        attempts = self.attempts[key]
        if exc is not None:
            failure = RequestFailure.from_exception(
                key, exc, kind=kind, worker=worker, attempts=attempts)
        else:
            failure = RequestFailure(key=key, kind=kind, error=error,
                                     worker=worker, attempts=attempts)
        retrying = (not self.cancelled
                    and attempts <= self.policy.max_retries)
        if self.on_failure is not None:
            self.on_failure(failure, retrying)
        if retrying:
            due = time.monotonic() + self.policy.backoff(key, attempts)
            heapq.heappush(self.retry_at, (due, key))
            return []
        self.failures.append(failure)
        events: List[Event] = [("fail", key, failure)]
        if self.policy.fail_fast and not self.cancelled:
            events.extend(self._cancel_pending())
        return events

    def _cancel_pending(self) -> List[Event]:
        """Fail-fast: abandon everything not yet in flight."""
        self.cancelled = True
        drained = list(self.queue) + [key for _, key in self.retry_at]
        self.queue.clear()
        self.retry_at.clear()
        events: List[Event] = []
        for key in drained:
            failure = RequestFailure(
                key=key, kind="cancelled",
                error="abandoned after another request's terminal "
                      "failure (fail-fast)",
                attempts=self.attempts.get(key, 0))
            if self.on_failure is not None:
                self.on_failure(failure, False)
            self.failures.append(failure)
            events.append(("fail", key, failure))
        return events

    # -- consumption -------------------------------------------------------

    def _consume(self, future: Future, key: str) -> Tuple[List[Event], bool]:
        """Take one future's outcome; returns (events, pool_crashed)."""
        self.pool.discard(key)
        try:
            payload = future.result(timeout=0)
        except BrokenProcessPool as exc:
            return (self._fail(key, "crash",
                               str(exc) or "worker process died",
                               exc=None), True)
        except (CancelledError, FutureTimeoutError):
            return (self._fail(key, "crash",
                               "worker pool died mid-flight"), True)
        except StoreDecodeError as exc:
            return (self._fail(key, "corrupt", str(exc), exc=exc), False)
        except Exception as exc:
            return (self._fail(key, "exception", str(exc), exc=exc),
                    False)
        try:
            result = (self.on_result(key, payload)
                      if self.on_result is not None else payload)
        except StoreDecodeError as exc:
            return (self._fail(key, "corrupt", str(exc), exc=exc), False)
        return ([("ok", key, result)], False)

    def _handle_crash(self) -> List[Event]:
        """The executor broke: heal it, then settle every tracked future.

        Futures that completed before the break still hold results —
        consume them normally; the rest observe a ``crash`` failure and
        re-enter the retry discipline.
        """
        remaining = list(self.futures.items())
        self.futures.clear()
        self.deadlines.clear()
        self._rebuild()
        events: List[Event] = []
        for future, key in remaining:
            evs, _ = self._consume(future, key)
            events.extend(evs)
        return events

    def _handle_timeouts(self, expired_keys: set) -> List[Event]:
        """Deadlines expired: kill the hung workers, settle the batch.

        There is no per-task cancellation in ProcessPoolExecutor, so a
        hung attempt costs a pool rebuild.  Timed-out keys observe a
        ``timeout`` failure; innocent siblings that were merely
        in-flight are resubmitted *without* burning retry budget.
        """
        remaining = list(self.futures.items())
        self.futures.clear()
        self.deadlines.clear()
        self._rebuild()
        events: List[Event] = []
        for future, key in remaining:
            if future.done() and key not in expired_keys:
                evs, _ = self._consume(future, key)
                events.extend(evs)
            elif key in expired_keys:
                events.extend(self._fail(
                    key, "timeout",
                    f"attempt exceeded {self.policy.timeout_s}s "
                    f"wall-clock budget"))
            else:
                self.attempts[key] -= 1  # innocent: no budget charge
                self.queue.append(key)
        return events

    # -- the drive loop ----------------------------------------------------

    def pending(self) -> bool:
        return bool(self.futures or self.queue or self.retry_at)

    def _step(self) -> List[Event]:
        self._pump()
        if not self.futures:
            if self.retry_at:
                delay = self.retry_at[0][0] - time.monotonic()
                if delay > 0:
                    time.sleep(min(delay, 0.25))
            return []
        timeout = None
        candidates = []
        if self.deadlines:
            candidates.append(min(self.deadlines.values()))
        if self.retry_at:
            candidates.append(self.retry_at[0][0])
        if candidates:
            timeout = max(0.0, min(candidates) - time.monotonic()) + 0.02
        done, _ = wait(set(self.futures), timeout=timeout,
                       return_when=FIRST_COMPLETED)
        events: List[Event] = []
        crashed = False
        for future in done:
            key = self.futures.pop(future, None)
            if key is None:
                continue
            self.deadlines.pop(future, None)
            evs, was_crash = self._consume(future, key)
            events.extend(evs)
            crashed = crashed or was_crash
        if crashed:
            events.extend(self._handle_crash())
            return events
        if self.deadlines:
            now = time.monotonic()
            expired_keys = {
                key for future, key in self.futures.items()
                if self.deadlines.get(future, float("inf")) <= now
                and not future.done()
            }
            if expired_keys:
                events.extend(self._handle_timeouts(expired_keys))
        return events

    def events(self) -> Iterator[Event]:
        """Yield outcome events until every request is settled."""
        while self.pending():
            for event in self._step():
                yield event

    def finalize(self) -> None:
        """Settle abandoned work: record done futures, keep pending ones.

        Safe to call whether :meth:`events` ran to completion or the
        consumer walked away mid-stream (including during generator GC
        after the engine closed — every exception is swallowed, since
        dropping a cache write is safe and raising here is not).
        Pending futures stay in the pool's in-flight map so a later
        batch can harvest them once they finish.
        """
        if self._finalized:
            return
        self._finalized = True
        for future, key in list(self.futures.items()):
            if not future.done():
                continue
            self.pool.discard(key)
            try:
                payload = future.result(timeout=0)
            # Finalize is best-effort harvest during teardown: a failed
            # run was already journaled when it failed, so any error
            # here only means "nothing to salvage".
            except Exception:  # repro: allow(no-bare-except)
                continue
            if self.on_result is not None:
                try:
                    self.on_result(key, payload)
                # Same contract: a result-sink error during teardown
                # must not lose the remaining harvestable futures.
                except Exception:  # repro: allow(no-bare-except)
                    continue
        self.futures.clear()
        self.deadlines.clear()


def iter_serial(
    keyed_requests: Sequence[Tuple[str, Request]],
    *,
    policy: Optional[ExecutionPolicy] = None,
    faults: Optional[FaultPlan] = None,
    telemetry: Optional[bool] = None,
    on_result: Optional[Callable[[str, dict], object]] = None,
    on_failure: Optional[FailureFn] = None,
) -> Iterator[Event]:
    """Serial (in-process) counterpart of :class:`BatchExecution`.

    Same event vocabulary and retry/backoff discipline, executed inline
    one request at a time.  Per-attempt wall-clock timeouts cannot be
    enforced without a worker process to kill, so ``timeout_s`` is
    inert here; injected ``crash`` faults downgrade to raises.
    """
    policy = policy if policy is not None else ExecutionPolicy()
    seen = set()
    cancelled = False
    for key, request in keyed_requests:
        if key in seen:
            continue
        seen.add(key)
        if cancelled:
            failure = RequestFailure(
                key=key, kind="cancelled",
                error="abandoned after another request's terminal "
                      "failure (fail-fast)",
                attempts=0)
            if on_failure is not None:
                on_failure(failure, False)
            yield ("fail", key, failure)
            continue
        attempt = 0
        while True:
            kind = "exception"
            try:
                payload = _execute_request(
                    request,
                    spans_enabled() if telemetry is None else telemetry,
                    faults, attempt, inline=True)
                result = (on_result(key, payload)
                          if on_result is not None else payload)
            except StoreDecodeError as exc:
                kind, error = "corrupt", exc
            except Exception as exc:
                error = exc
            else:
                yield ("ok", key, result)
                break
            attempt += 1
            failure = RequestFailure.from_exception(
                key, error, kind=kind, worker=worker_id(),
                attempts=attempt)
            retrying = attempt <= policy.max_retries
            if on_failure is not None:
                on_failure(failure, retrying)
            if retrying:
                time.sleep(policy.backoff(key, attempt))
                continue
            yield ("fail", key, failure)
            if policy.fail_fast:
                cancelled = True
            break
