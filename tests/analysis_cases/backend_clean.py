"""Fixture: connection use inside a blessed transaction block."""


def mark_done(backend, key):
    with backend.transaction() as conn:
        conn.execute("UPDATE jobs SET state = 'done' WHERE key = ?",
                     (key,))


def count_rows(backend):
    return backend.execute("SELECT COUNT(*) FROM jobs").fetchone()[0]
