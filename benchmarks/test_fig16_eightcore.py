"""Figure 16: eight-core workload mixes (CD1).

Paper shape: the four-core conclusions hold at eight cores — Athena leads
overall without any multi-core retuning.
"""

from conftest import run_once

from repro.experiments.figures import fig16_eightcore

TOL = 0.03


def test_fig16(benchmark, ctx, save_result):
    result = run_once(benchmark, lambda: fig16_eightcore(ctx))
    save_result(result)

    overall = result.row("Overall")
    assert overall["Athena"] >= max(
        overall["Naive"], overall["HPAC"], overall["MAB"]
    ) - TOL
    adverse = result.row("adverse-mix")
    assert adverse["Athena"] > adverse["Naive"]
