"""Shared fixtures for the figure-regeneration benchmarks.

All benchmarks share one :class:`ExperimentContext` per session, backed by
a :class:`repro.engine.api.Engine` with a *persistent* result store: runs
common to several figures (e.g. the CD1 baselines) are simulated once per
store lifetime, so a second benchmark session replays everything from
disk.  Configuration via environment variables:

* ``REPRO_SCALE``  — tiny/small/medium/full (default small).
* ``REPRO_STORE``  — store path (default ``benchmarks/results/store.sqlite``);
  set to ``none`` to disable persistence.
* ``REPRO_JOBS``   — worker processes for simulation misses (default 1).

Each benchmark prints the regenerated figure table and also writes it to
``benchmarks/results/<figure>.txt`` so the output survives pytest's
capture.  The engine's executed/hit summary is printed at session end.
"""

import os
import pathlib

import pytest

from repro.engine import Engine, ResultStore
from repro.experiments.runner import ExperimentContext

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def engine():
    store_setting = os.environ.get(
        "REPRO_STORE", str(RESULTS_DIR / "store.sqlite")
    )
    if store_setting.lower() == "none":
        store = None
    else:
        store = ResultStore(store_setting)
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    engine = Engine(store=store, jobs=jobs)
    yield engine
    print()
    print(engine.counters.summary())
    engine.close()


@pytest.fixture(scope="session")
def ctx(engine):
    return ExperimentContext(engine=engine)


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(result):
        table = result.format_table()
        print()
        print(table)
        path = RESULTS_DIR / f"{result.figure_id}.txt"
        path.write_text(table + "\n")
        return table

    return _save


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
