"""Storage-budget audits against paper Tables 4 and 8."""

import pytest

from repro.core.agent import AthenaAgent
from repro.core.bloom import BloomFilter
from repro.core.qvstore import QVStore
from repro.ocp import make_ocp
from repro.policies.hpac import HpacPolicy
from repro.policies.mab import MabPolicy
from repro.policies.tlp import TlpPolicy
from repro.prefetchers import make_prefetcher


class TestTable4:
    """Athena's own budget: QVStore 2KB + 2 x 0.5KB Bloom filters = 3KB."""

    def test_qvstore_2kib(self):
        store = QVStore(num_actions=4, num_planes=8, rows_per_plane=64,
                        q_value_bits=8)
        assert store.storage_kib() == pytest.approx(2.0)

    def test_each_tracker_filter_half_kib(self):
        assert BloomFilter(4096, 2).storage_bits() == 4096  # 0.5 KB

    def test_total_athena_3kib(self):
        agent = AthenaAgent(num_actions=4)
        assert agent.storage_kib() == pytest.approx(3.0, abs=0.05)


class TestTable8Prefetchers:
    """Each prefetcher must stay within its paper budget class."""

    @pytest.mark.parametrize("name,limit_kib", [
        ("ipcp", 0.7 * 1.5),
        ("berti", 2.55 * 2.0),
        ("pythia", 25.5),
        ("spp_ppf", 39.3),
        ("mlop", 8.0 * 1.1),
        ("sms", 20.0 * 1.05),
    ])
    def test_prefetcher_budget(self, name, limit_kib):
        assert make_prefetcher(name).storage_kib() <= limit_kib

    def test_relative_ordering_matches_paper(self):
        """Table 8: IPCP is the smallest; SMS and SPP+PPF the large L2C
        table classes (exact mid-range ordering is implementation
        detail — the budget-class tests above pin each absolute size)."""
        sizes = {
            name: make_prefetcher(name).storage_bits()
            for name in ("ipcp", "berti", "mlop", "sms", "spp_ppf")
        }
        assert sizes["ipcp"] == min(sizes.values())
        assert sizes["ipcp"] < sizes["berti"]
        assert sizes["mlop"] < sizes["sms"]
        assert sizes["mlop"] < sizes["spp_ppf"]


class TestTable8OcpsAndPolicies:
    @pytest.mark.parametrize("name,limit_kib", [
        ("popet", 4.0),
        ("hmp", 11.0 * 1.1),
    ])
    def test_ocp_budget(self, name, limit_kib):
        assert make_ocp(name).storage_kib() <= limit_kib

    def test_ttp_is_the_expensive_one(self):
        """Table 8: TTP needs ~L2-tag-array-scale metadata (1536 KB)."""
        ttp = make_ocp("ttp")
        popet = make_ocp("popet")
        assert ttp.storage_bits() > 30 * popet.storage_bits()

    def test_policy_budgets_ordered_like_table8(self):
        """Table 8: MAB (0.1KB) < HPAC (0.5KB) < Athena (3KB) < TLP (6.98KB)."""
        mab = MabPolicy()
        mab.arms = (None,) * 4
        hpac = HpacPolicy()
        athena_bits = AthenaAgent(4).storage_bits()
        tlp = TlpPolicy()
        assert mab.storage_bits() < hpac.storage_bits()
        assert hpac.storage_bits() < athena_bits
        assert athena_bits < tlp.storage_bits() * 2  # same class
