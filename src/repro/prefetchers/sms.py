"""SMS — Spatial Memory Streaming (Somogyi+, ISCA 2006).

SMS learns the *spatial footprint* of code regions: which lines inside a
spatial region (here 2KB = 32 lines) a particular (PC, trigger-offset) pair
touches during one "generation".  Footprints accumulate in an Active
Generation Table (AGT) while the region is live; when the generation ends
(AGT eviction), the bitmap is stored in the Pattern History Table (PHT).
The next time the same trigger recurs, SMS replays the stored footprint as
prefetches.

The paper evaluates SMS at L2C with a 20 KB budget (Table 8).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from .base import Prefetcher

_REGION_SHIFT = 5  # 32 lines per region
_REGION_LINES = 1 << _REGION_SHIFT
_OFFSET_MASK = _REGION_LINES - 1
_AGT_SIZE = 32
_PHT_SIZE = 2048


class SmsPrefetcher(Prefetcher):
    """Spatial footprint prefetcher (L2C)."""

    level = "l2c"
    max_degree = 16

    def __init__(self) -> None:
        super().__init__()
        # region -> [trigger_key, footprint_bitmap]
        self._agt: "OrderedDict[int, List[int]]" = OrderedDict()
        # trigger_key -> [footprint bitmap, confirmed?]
        self._pht: "OrderedDict[int, List[int]]" = OrderedDict()

    @staticmethod
    def _trigger_key(pc: int, offset: int) -> int:
        return (((pc >> 2) << _REGION_SHIFT) | offset) & 0xFFFFFFFF

    def _train_and_predict(self, pc: int, line_addr: int, hit: bool) -> List[int]:
        region = line_addr >> _REGION_SHIFT
        offset = line_addr & _OFFSET_MASK
        entry = self._agt.get(region)

        if entry is not None:
            entry[1] |= 1 << offset
            self._agt.move_to_end(region)
            return []

        # New generation for this region.
        trigger = self._trigger_key(pc, offset)
        self._agt[region] = [trigger, 1 << offset]
        if len(self._agt) > _AGT_SIZE:
            _, (old_trigger, footprint) = self._agt.popitem(last=False)
            self._store_pattern(old_trigger, footprint)

        entry = self._pht.get(trigger)
        if entry is None or not entry[1]:
            # Unknown or not-yet-confirmed trigger: train silently.
            return []
        self._pht.move_to_end(trigger)
        return self._replay(region, offset, entry[0])

    def _store_pattern(self, trigger: int, footprint: int) -> None:
        if bin(footprint).count("1") < 2:
            return  # single-access generations carry no spatial signal
        # Keep the *recurring* part of the footprint and require one
        # reconfirming generation before the pattern replays: the stored
        # pattern is the intersection of consecutive generations, so only
        # the stable spatial signal is ever prefetched.  Dense, repetitive
        # footprints confirm after one revisit and pass through intact;
        # sparse, non-repeating graph footprints either intersect away or
        # never confirm, instead of spraying a stale dense bitmap over the
        # whole region.
        previous = self._pht.get(trigger)
        confirmed = False
        if previous is not None:
            overlap = previous[0] & footprint
            if bin(overlap).count("1") >= 2:
                footprint = overlap
                confirmed = True
        self._pht[trigger] = [footprint, confirmed]
        self._pht.move_to_end(trigger)
        if len(self._pht) > _PHT_SIZE:
            self._pht.popitem(last=False)

    def _replay(self, region: int, trigger_offset: int, pattern: int) -> List[int]:
        """Emit the footprint lines nearest to the trigger first."""
        base = region << _REGION_SHIFT
        offsets = [
            o
            for o in range(_REGION_LINES)
            if o != trigger_offset and (pattern >> o) & 1
        ]
        offsets.sort(key=lambda o: abs(o - trigger_offset))
        return [base + o for o in offsets]

    def flush_generations(self) -> None:
        """End all live generations (tests and end-of-trace training)."""
        while self._agt:
            _, (trigger, footprint) = self._agt.popitem(last=False)
            self._store_pattern(trigger, footprint)

    def storage_bits(self) -> int:
        agt_entry = 26 + 32 + _REGION_LINES  # region tag + trigger + bitmap
        pht_entry = 32 + _REGION_LINES
        return _AGT_SIZE * agt_entry + _PHT_SIZE * pht_entry
