#!/usr/bin/env python3
"""Quickstart: run one workload under Athena and the baselines.

This is the 60-second tour of the SDK: open a :class:`repro.api.Session`,
describe each measurement as a typed :class:`repro.api.RunSpec` (design
variant × coordination policy), and read tidy results back.  Every run
resolves through the engine's content-addressed cache, so re-running
this script against a store (``Session(store=...)``) executes nothing.

Run:
    python examples/quickstart.py [workload] [trace_length]
"""

import sys

from repro.api import RunSpec, Session
from repro.workloads.suites import build_trace, find_workload


def run(workload_name: str, length: int) -> None:
    spec = find_workload(workload_name)
    trace = build_trace(spec, length)
    print(f"workload: {spec.name}  (suite={spec.suite}, "
          f"pattern={spec.pattern}, {len(trace)} instructions)")
    print(f"memory intensity: {trace.memory_intensity():.2f}, "
          f"footprint: {trace.footprint_lines()} lines")
    print()

    configs = [
        ("baseline (no PF, no OCP)", "baseline", "none"),
        ("POPET only", "ocp-only", "none"),
        ("Pythia only", "pf-only", "none"),
        ("Naive (both, uncoordinated)", "full", "none"),
        ("HPAC", "full", "hpac"),
        ("MAB", "full", "mab"),
        ("Athena", "full", "athena"),
    ]

    epoch_length = max(100, length // 80)
    print(f"{'configuration':<30} {'IPC':>8} {'speedup':>8} "
          f"{'LLC MPKI':>9} {'PF acc':>7} {'OCP acc':>8}")
    with Session() as session:
        for label, variant, policy in configs:
            result = session.run(RunSpec(
                workload=workload_name,
                design="cd1",
                variant=variant,
                policy=policy,
                trace_length=length,
                epoch_length=epoch_length,
            ))
            # IPC/MPKI/accuracy all from the representative run so the
            # row is self-consistent; speedup stays the seed-averaged
            # metric the paper reports (they differ only for athena).
            representative = result.result
            stats = representative.stats
            print(
                f"{label:<30} {representative.ipc:>8.4f} "
                f"{result.speedup:>8.3f} "
                f"{stats.llc_mpki:>9.1f} "
                f"{stats.prefetch_accuracy:>7.2f} "
                f"{stats.ocp_accuracy:>8.2f}"
            )


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "spec06.mcf_like.0"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 16_000
    run(workload, length)


if __name__ == "__main__":
    main()
