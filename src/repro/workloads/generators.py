"""Synthetic memory-access pattern generators.

These stand in for the paper's 100 SPEC / PARSEC / Ligra / CVP traces (see
DESIGN.md, substitution table).  Each generator emits an instruction
stream with a characteristic access pattern; suites compose them into
workloads that land in the paper's two behavioural classes:

* *prefetcher-friendly*: regular spatial patterns (streams, strides,
  stencils) that address-predicting prefetchers cover well;
* *prefetcher-adverse*: irregular patterns (pointer chasing, hash probes,
  graph neighbour walks) where full-address prediction fails but the
  binary off-chip/on-chip question stays highly predictable — the
  dichotomy behind paper Figure 1.

All generators draw from a caller-provided ``random.Random`` so workloads
are fully deterministic given their registry seed.
"""

from __future__ import annotations

import random
from typing import Callable, Dict

from .trace import LINE_SHIFT, Trace, TraceBuilder

#: distinct PC regions per pattern so PC-indexed predictors can separate them
_PC_STRIDE = 0x40


def _pc(block: int, slot: int = 0) -> int:
    return 0x400000 + block * 0x10000 + slot * _PC_STRIDE


def _line_to_addr(line: int, offset: int = 0) -> int:
    return (line << LINE_SHIFT) | (offset & 0x3F)


def _filler(
    builder: TraceBuilder,
    rng: random.Random,
    count: int,
    pc_block: int,
    mispredict_rate: float,
) -> None:
    """Emit ``count`` non-memory instructions (ALU work + branches)."""
    for _ in range(count):
        if rng.random() < 0.15:
            builder.branch(
                _pc(pc_block, 9), mispredicted=rng.random() < mispredict_rate
            )
        else:
            builder.nop(_pc(pc_block, 8))


# --------------------------------------------------------------------------
# pattern emitters
# --------------------------------------------------------------------------

def emit_stream(
    builder: TraceBuilder,
    rng: random.Random,
    instructions: int,
    base_line: int,
    pc_block: int,
    stride: int = 1,
    gap: int = 2,
    mispredict_rate: float = 0.002,
    store_every: int = 0,
    elements_per_line: int = 8,
    array_lines: int = 0,
    dep_every_lines: int = 4,
) -> None:
    """Sequential/strided node scan: the canonical prefetcher-friendly
    pattern.

    Loads walk 8-byte elements; each cacheline serves ``elements_per_line``
    consecutive loads.  Every ``dep_every_lines``-th line advance is
    *address-dependent* on the previous line's data (a sequentially
    laid-out linked structure whose node spans several lines), which makes
    the pattern partially latency-bound without prefetching: the periodic
    dependent advance caps the memory-level parallelism the out-of-order
    window can extract, and an accurate prefetcher collapses those chains
    into cache hits.  The period bounds the prefetcher's upside to the
    paper's observed range (friendly-workload speedups of roughly
    1.1-1.7x) instead of the unbounded win a fully-serialised stream
    would show.

    ``array_lines`` > 0 wraps the sweep so the array becomes LLC-resident
    after the first pass (prefetching then hides on-chip latency without
    extra DRAM traffic); 0 streams endlessly through cold memory.
    """
    line = base_line
    swept = 0
    emitted = 0
    i = 0
    lines_advanced = 0
    while emitted < instructions:
        element = i % elements_per_line
        dependent = (
            element == 0 and lines_advanced % max(1, dep_every_lines) == 0
        )
        builder.load(
            _pc(pc_block, 0),
            _line_to_addr(line, element * 8),
            dependent=dependent,
        )
        emitted += 1
        if store_every and i % store_every == store_every - 1:
            builder.store(_pc(pc_block, 1), _line_to_addr(line, 8))
            emitted += 1
        fill = min(gap, instructions - emitted)
        _filler(builder, rng, fill, pc_block, mispredict_rate)
        emitted += fill
        if element == elements_per_line - 1:
            line += stride
            swept += stride
            lines_advanced += 1
            if array_lines and swept >= array_lines:
                line = base_line
                swept = 0
        i += 1


def emit_stencil(
    builder: TraceBuilder,
    rng: random.Random,
    instructions: int,
    base_line: int,
    pc_block: int,
    arrays: int = 3,
    array_gap_lines: int = 1 << 16,
    mispredict_rate: float = 0.001,
    elements_per_line: int = 8,
) -> None:
    """Multiple concurrent unit-stride streams (a[i] = b[i] op c[i])."""
    emitted = 0
    i = 0
    while emitted < instructions:
        line_index = i // elements_per_line
        element = i % elements_per_line
        for a in range(arrays):
            if emitted >= instructions:
                break
            line = base_line + a * array_gap_lines + line_index
            if a == arrays - 1:
                builder.store(_pc(pc_block, a), _line_to_addr(line, element * 8))
            else:
                builder.load(_pc(pc_block, a), _line_to_addr(line, element * 8))
            emitted += 1
        fill = min(3, instructions - emitted)
        _filler(builder, rng, fill, pc_block, mispredict_rate)
        emitted += fill
        i += 1


def emit_pointer_chase(
    builder: TraceBuilder,
    rng: random.Random,
    instructions: int,
    base_line: int,
    working_set_lines: int,
    pc_block: int,
    gap: int = 8,
    mispredict_rate: float = 0.02,
    decoy_rate: float = 0.3,
) -> None:
    """Dependent random walk: prefetcher-adverse, highly off-chip.

    Every load's address comes from the previous load's data (FLAG_DEP),
    so misses serialise — the linked-list traversal of mcf/omnetpp/canneal.
    With the working set far exceeding the LLC, nearly every access goes
    off-chip, which is exactly the regime where an OCP shines.

    ``decoy_rate`` controls how often a node visit spills into a short
    sequential-line burst (reading the node's payload across adjacent
    lines).  Real irregular workloads are full of such transient runs;
    they bait stride/delta prefetchers into gaining confidence and then
    spraying useless prefetch degree past the end of the run — the
    mechanism behind the paper's prefetcher-adverse degradation.
    """
    # Sattolo's algorithm: a uniformly random single-cycle permutation,
    # i.e. a genuine linked list threaded randomly through the working
    # set.  (A multiplicative LCG walk degenerates into tiny same-set
    # cycles for power-of-two working sets — a conflict-thrash
    # microbenchmark, not a pointer chase.)
    perm = list(range(working_set_lines))
    for i in range(working_set_lines - 1, 0, -1):
        j = rng.randrange(i)
        perm[i], perm[j] = perm[j], perm[i]
    state = rng.randrange(working_set_lines)
    emitted = 0
    while emitted < instructions:
        line = base_line + state
        builder.load(_pc(pc_block, 0), _line_to_addr(line), dependent=True)
        emitted += 1
        if decoy_rate and rng.random() < decoy_rate:
            # Payload spill: a 4-line sequential run from one dedicated PC.
            for step in range(1, 5):
                if emitted >= instructions:
                    break
                builder.load(_pc(pc_block, 2), _line_to_addr(line + step))
                emitted += 1
        fill = min(gap, instructions - emitted)
        _filler(builder, rng, fill, pc_block, mispredict_rate)
        emitted += fill
        state = perm[state]


def emit_hash_probe(
    builder: TraceBuilder,
    rng: random.Random,
    instructions: int,
    base_line: int,
    working_set_lines: int,
    pc_block: int,
    locality: float = 0.1,
    gap: int = 8,
    mispredict_rate: float = 0.015,
    chain_length: int = 2,
    decoy_rate: float = 0.25,
) -> None:
    """Random hash probes with dependent bucket chains (xalancbmk-like).

    Each probe lands on a random bucket; collisions walk a short *dependent*
    chain (``chain_length`` loads whose addresses come from the previous
    load).  The mix leaves the pattern unprefetchable (random addresses) but
    partially latency-bound (dependent chains), which is exactly the regime
    where an accurate off-chip predictor wins and a prefetcher only burns
    bandwidth — the paper's prefetcher-adverse class.
    """
    hot_lines = max(8, int(working_set_lines * 0.01))
    emitted = 0
    while emitted < instructions:
        if rng.random() < locality:
            # Hot-set probes come from their own PC (the fast path that
            # touches resident metadata), as in real hash-table code; a
            # PC-indexed off-chip predictor can then separate the always-
            # resident hot path from the always-missing cold probes.
            line = base_line + rng.randrange(hot_lines)
            builder.load(_pc(pc_block, 5), _line_to_addr(line))
        else:
            line = base_line + rng.randrange(working_set_lines)
            builder.load(_pc(pc_block, 0), _line_to_addr(line))
        emitted += 1
        for hop in range(chain_length):
            if emitted >= instructions:
                break
            line = base_line + (line * 2654435761 + hop) % working_set_lines
            builder.load(_pc(pc_block, 1), _line_to_addr(line), dependent=True)
            emitted += 1
            fill = min(3, instructions - emitted)
            _filler(builder, rng, fill, pc_block, mispredict_rate)
            emitted += fill
        if decoy_rate and rng.random() < decoy_rate:
            # Bucket scan: a short sequential sweep over the bucket's
            # neighbouring lines (open addressing / key comparison walk)
            # that trains stride predictors just long enough to misfire.
            for step in range(1, 5):
                if emitted >= instructions:
                    break
                builder.load(_pc(pc_block, 3), _line_to_addr(line + step))
                emitted += 1
        fill = min(gap, instructions - emitted)
        _filler(builder, rng, fill, pc_block, mispredict_rate)
        emitted += fill


def emit_graph_walk(
    builder: TraceBuilder,
    rng: random.Random,
    instructions: int,
    base_line: int,
    num_vertices_lines: int,
    pc_block: int,
    neighbors_per_vertex: int = 4,
    mispredict_rate: float = 0.01,
    gap: int = 3,
    clustering: float = 0.3,
) -> None:
    """Frontier-driven graph processing (Ligra BFS/PageRank shape).

    Alternates a sequential frontier/offset scan (friendly) with bursts of
    random vertex-data accesses (adverse); the blend is what makes graph
    workloads partially prefetchable.
    """
    frontier_line = base_line
    vertex_base = base_line + (1 << 20)
    emitted = 0
    step = 0
    while emitted < instructions:
        builder.load(
            _pc(pc_block, 0), _line_to_addr(frontier_line, (step * 8) & 0x3F)
        )
        emitted += 1
        if step % 8 == 7:
            frontier_line += 1
        step += 1
        hot_vertices = max(16, num_vertices_lines // 64)
        for _ in range(neighbors_per_vertex):
            if emitted >= instructions:
                break
            # Power-law-ish degree distribution: popular vertices stay hot
            # in the cache, the long tail goes off-chip.
            if rng.random() < clustering:
                target = vertex_base + rng.randrange(hot_vertices)
            else:
                target = vertex_base + rng.randrange(num_vertices_lines)
            builder.load(_pc(pc_block, 1), _line_to_addr(target),
                         dependent=rng.random() < 0.4)
            emitted += 1
            fill = min(gap, instructions - emitted)
            _filler(builder, rng, fill, pc_block, mispredict_rate)
            emitted += fill
        fill = min(gap, instructions - emitted)
        _filler(builder, rng, fill, pc_block, mispredict_rate)
        emitted += fill


def emit_gups(
    builder: TraceBuilder,
    rng: random.Random,
    instructions: int,
    base_line: int,
    working_set_lines: int,
    pc_block: int,
    mispredict_rate: float = 0.005,
) -> None:
    """Random read-modify-write updates (GUPS / streamcluster-like)."""
    emitted = 0
    while emitted < instructions:
        line = base_line + rng.randrange(working_set_lines)
        builder.load(_pc(pc_block, 0), _line_to_addr(line))
        emitted += 1
        if emitted < instructions:
            builder.store(_pc(pc_block, 1), _line_to_addr(line, 8))
            emitted += 1
        fill = min(8, instructions - emitted)
        _filler(builder, rng, fill, pc_block, mispredict_rate)
        emitted += fill


def emit_compute(
    builder: TraceBuilder,
    rng: random.Random,
    instructions: int,
    base_line: int,
    pc_block: int,
    memory_ratio: float = 0.08,
    working_set_lines: int = 4096,
    mispredict_rate: float = 0.04,
    streaming_fraction: float = 0.5,
) -> None:
    """Compute-dominated phases with occasional memory bursts (CVP-like).

    The streaming component walks 8-byte elements of a sequentially-linked
    structure (periodic dependent line advance, like :func:`emit_stream`);
    the irregular component probes a random working set.
    """
    stream_line = base_line
    element = 0
    emitted = 0
    lines_advanced = 0
    while emitted < instructions:
        if rng.random() < memory_ratio:
            if rng.random() < streaming_fraction:
                # Same software-pipelined dependence as emit_stream: one
                # dependent advance every fourth line bounds the
                # prefetcher's upside on the streaming component.
                dependent = element == 0 and lines_advanced % 4 == 0
                builder.load(
                    _pc(pc_block, 0),
                    _line_to_addr(stream_line, element * 8),
                    dependent=dependent,
                )
                element += 1
                if element == 8:
                    element = 0
                    stream_line += 1
                    lines_advanced += 1
            else:
                line = base_line + (1 << 20) + rng.randrange(working_set_lines)
                builder.load(_pc(pc_block, 1), _line_to_addr(line))
            emitted += 1
        else:
            _filler(builder, rng, 1, pc_block, mispredict_rate)
            emitted += 1


# --------------------------------------------------------------------------
# whole-workload generators (phase composition)
# --------------------------------------------------------------------------

PatternFn = Callable[[TraceBuilder, random.Random, int, dict], None]


def _compose(
    name: str,
    suite: str,
    seed: int,
    length: int,
    phases,
) -> Trace:
    """Run each (weight, emit_fn, kwargs) phase for its share of ``length``."""
    rng = random.Random(seed)
    builder = TraceBuilder(name, suite)
    total_weight = sum(weight for weight, _, _ in phases)
    for weight, emit, kwargs in phases:
        budget = int(length * weight / total_weight)
        if budget > 0:
            emit(builder, rng, budget, **kwargs)
    # Emitters may land a few instructions off their budget (a burst or a
    # store straddling the boundary); deliver the exact requested length.
    if len(builder) < length:
        _filler(builder, rng, length - len(builder), pc_block=0,
                mispredict_rate=0.0)
    trace = builder.build(metadata={"seed": seed, "length": length})
    if len(trace) > length:
        trace = trace.slice(0, length)
    return trace


def make_streaming_workload(name, suite, seed, length, stride=1) -> Trace:
    return _compose(name, suite, seed, length, [
        (1.0, emit_stream,
         dict(base_line=seed % 1000 << 12, pc_block=1, stride=stride,
              store_every=8)),
    ])


def make_stencil_workload(name, suite, seed, length) -> Trace:
    return _compose(name, suite, seed, length, [
        (1.0, emit_stencil, dict(base_line=(seed % 997) << 13, pc_block=2)),
    ])


def make_pointer_chase_workload(name, suite, seed, length,
                                working_set_lines=1 << 14,
                                decoy_rate=0.3) -> Trace:
    return _compose(name, suite, seed, length, [
        (1.0, emit_pointer_chase,
         dict(base_line=(seed % 991) << 14, pc_block=3,
              working_set_lines=working_set_lines,
              decoy_rate=decoy_rate)),
    ])


def make_hash_probe_workload(name, suite, seed, length,
                             working_set_lines=1 << 14,
                             decoy_rate=0.25) -> Trace:
    return _compose(name, suite, seed, length, [
        (1.0, emit_hash_probe,
         dict(base_line=(seed % 983) << 14, pc_block=4,
              working_set_lines=working_set_lines,
              decoy_rate=decoy_rate)),
    ])


def make_graph_workload(name, suite, seed, length,
                        num_vertices_lines=1 << 14,
                        neighbors_per_vertex=4) -> Trace:
    return _compose(name, suite, seed, length, [
        (1.0, emit_graph_walk,
         dict(base_line=(seed % 977) << 14, pc_block=5,
              num_vertices_lines=num_vertices_lines,
              neighbors_per_vertex=neighbors_per_vertex)),
    ])


def make_gups_workload(name, suite, seed, length,
                       working_set_lines=1 << 14) -> Trace:
    return _compose(name, suite, seed, length, [
        (1.0, emit_gups,
         dict(base_line=(seed % 971) << 14, pc_block=6,
              working_set_lines=working_set_lines)),
    ])


def make_compute_workload(name, suite, seed, length,
                          memory_ratio=0.12,
                          streaming_fraction=0.5,
                          mispredict_rate=0.04,
                          working_set_lines=2048) -> Trace:
    return _compose(name, suite, seed, length, [
        (1.0, emit_compute,
         dict(base_line=(seed % 967) << 13, pc_block=7,
              memory_ratio=memory_ratio,
              streaming_fraction=streaming_fraction,
              mispredict_rate=mispredict_rate,
              working_set_lines=working_set_lines)),
    ])


def make_phased_workload(name, suite, seed, length,
                         working_set_lines=1 << 14) -> Trace:
    """Alternating friendly/adverse phases (gcc/astar-like)."""
    base = (seed % 953) << 14
    return _compose(name, suite, seed, length, [
        (0.35, emit_stream, dict(base_line=base, pc_block=1, store_every=16)),
        (0.2, emit_hash_probe,
         dict(base_line=base + (1 << 21), pc_block=4,
              working_set_lines=working_set_lines)),
        (0.3, emit_stream,
         dict(base_line=base + (1 << 22), pc_block=1, stride=2)),
        (0.15, emit_pointer_chase,
         dict(base_line=base + (1 << 23), pc_block=3,
              working_set_lines=working_set_lines)),
    ])


def make_datacenter_workload(name, suite, seed, length,
                             irregular_fraction=0.6) -> Trace:
    """Google/DPC4-like: bursty irregular traffic + moderate streaming."""
    base = (seed % 947) << 14
    regular = max(0.05, 1.0 - irregular_fraction)
    return _compose(name, suite, seed, length, [
        (irregular_fraction * 0.6, emit_hash_probe,
         dict(base_line=base, pc_block=4, working_set_lines=1 << 15,
              locality=0.25)),
        (irregular_fraction * 0.4, emit_pointer_chase,
         dict(base_line=base + (1 << 22), pc_block=3,
              working_set_lines=1 << 14, gap=5)),
        (regular * 0.5, emit_stream,
         dict(base_line=base + (1 << 23), pc_block=1, gap=4)),
        (regular * 0.5, emit_compute,
         dict(base_line=base + (1 << 24), pc_block=7, memory_ratio=0.10)),
    ])


#: generator registry keyed by pattern family name (used by the suites).
GENERATORS: Dict[str, Callable[..., Trace]] = {
    "streaming": make_streaming_workload,
    "stencil": make_stencil_workload,
    "pointer_chase": make_pointer_chase_workload,
    "hash_probe": make_hash_probe_workload,
    "graph": make_graph_workload,
    "gups": make_gups_workload,
    "compute": make_compute_workload,
    "phased": make_phased_workload,
    "datacenter": make_datacenter_workload,
}
