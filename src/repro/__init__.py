"""repro — a from-scratch Python reproduction of *Athena: Synergizing Data
Prefetching and Off-Chip Prediction via Online Reinforcement Learning*
(HPCA 2026).

The package is organised as:

* :mod:`repro.sim` — ChampSim-style trace-driven timing simulator
  (analytical OoO core, three-level caches, banked bandwidth-limited DRAM).
* :mod:`repro.prefetchers` — IPCP, Berti, Pythia, SPP+PPF, MLOP, SMS.
* :mod:`repro.ocp` — POPET, HMP, TTP off-chip predictors.
* :mod:`repro.core` — Athena itself: QVStore, Bloom-filter feature
  trackers, composite reward, SARSA agent.
* :mod:`repro.policies` — coordination policies: Athena, TLP, HPAC, MAB,
  Naive, fixed-action (StaticBest oracle building block).
* :mod:`repro.workloads` — deterministic synthetic trace suite standing in
  for the paper's 100 SPEC/PARSEC/Ligra/CVP traces.
* :mod:`repro.experiments` — cache designs CD1-CD4 and the per-figure
  experiment harness.

* :mod:`repro.api` — the typed, declarative experiment SDK: spec
  dataclasses with JSON/TOML round-trips, the unified component
  registry, and the Session execution facade.

Quickstart::

    from repro import quick_run
    result = quick_run("ligra.BFS.0", policy="athena")
    print(result.ipc)

or, through the SDK::

    from repro.api import RunSpec, Session
    with Session() as session:
        print(session.run(RunSpec(workload="ligra.BFS.0",
                                  policy="athena")).speedup)
"""

from __future__ import annotations

from typing import Optional

from .core.agent import AthenaAgent
from .core.config import AthenaConfig, PAPER_CONFIG
from .policies.athena import AthenaPolicy
from .policies.base import CoordinationAction, NaivePolicy
from .policies.hpac import HpacPolicy
from .policies.mab import MabPolicy
from .policies.tlp import TlpPolicy
from .sim.simulator import SimulationResult, Simulator

__version__ = "1.0.0"

__all__ = [
    "AthenaAgent",
    "AthenaConfig",
    "AthenaPolicy",
    "CoordinationAction",
    "HpacPolicy",
    "MabPolicy",
    "NaivePolicy",
    "PAPER_CONFIG",
    "SimulationResult",
    "Simulator",
    "TlpPolicy",
    "QuickRunResult",
    "quick_run",
    # lazily re-exported from repro.api (PEP 562):
    "ExperimentSpec",
    "MixSpec",
    "RunSpec",
    "Session",
    "SweepSpec",
]

#: SDK names resolved on first access so ``import repro`` stays light.
_API_EXPORTS = frozenset(
    {"Session", "RunSpec", "MixSpec", "SweepSpec", "ExperimentSpec"}
)


def __getattr__(name: str):
    if name in _API_EXPORTS:
        from . import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class QuickRunResult:
    """Summary of a :func:`quick_run`: the policy run plus its baseline.

    Attributes mirror what the paper reports per workload: ``ipc``,
    ``baseline_ipc`` (no prefetching, no OCP), and their ratio
    ``speedup``.  The full :class:`SimulationResult` is available as
    ``result`` for epoch-level inspection.
    """

    def __init__(self, result: SimulationResult, baseline_ipc: float) -> None:
        self.result = result
        self.ipc = result.ipc
        self.baseline_ipc = baseline_ipc
        self.speedup = result.ipc / baseline_ipc if baseline_ipc else 0.0

    def __repr__(self) -> str:
        return (
            f"QuickRunResult({self.result.workload!r}, ipc={self.ipc:.4f}, "
            f"speedup={self.speedup:.4f})"
        )


def quick_run(workload: str = "ligra.BFS.0", policy: str = "athena",
              design: str = "cd1", length: int = 24_000,
              policy_options: Optional[dict] = None) -> QuickRunResult:
    """Run one workload under one policy and report IPC + speedup.

    ``design`` selects the paper's cache design (``cd1`` ... ``cd4``);
    the speedup baseline is the same design with every prefetcher and the
    OCP removed, exactly as the paper normalises its figures.
    ``policy_options`` are forwarded to the policy constructor (for
    ``athena`` they become :class:`AthenaConfig` fields, e.g.
    ``{"seed": 7}``); unsupported options raise :exc:`ValueError`.
    """
    from .api.registry import make_design
    from .engine.jobs import _trace_for
    from .experiments.configs import build_hierarchy
    from .policies.registry import make_policy
    from .workloads.suites import find_workload

    cache_design = make_design(design)
    spec = find_workload(workload)
    epoch_length = max(100, length // 40)
    # _trace_for honours the REPRO_STREAM_BLOCK execution-time gate, so
    # one-off runs stream exactly like engine-routed requests.
    result = Simulator(
        _trace_for(spec, length),
        build_hierarchy(cache_design),
        policy=make_policy(policy, **(policy_options or {})),
        epoch_length=epoch_length,
    ).run()
    baseline = Simulator(
        _trace_for(spec, length),
        build_hierarchy(cache_design.without_mechanisms()),
        epoch_length=epoch_length,
    ).run()
    return QuickRunResult(result, baseline.ipc)
