"""Fixture: an explicit schema matching its factory exactly."""


def make_widget(size, color="red"):
    return (size, color)


def configure(registry):
    registry.register(
        "widget", "basic", make_widget,
        schema={"size": None, "color": None},
    )
