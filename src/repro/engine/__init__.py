"""Parallel experiment engine with a persistent, content-addressed store.

The engine turns every simulation the experiment harness wants into an
explicit, hashable *request*:

* :mod:`repro.engine.jobs` — :class:`~repro.engine.jobs.RunRequest` (one
  single-core simulation) and :class:`~repro.engine.jobs.MixRequest` (one
  multi-core mix), each canonicalized into a stable content-hash key,
  plus the JSON codecs for their results.
* :mod:`repro.engine.backend` — the shared SQLite seam (WAL, busy
  timeout, bounded retry on ``SQLITE_BUSY``, foreign-file guard) that
  both durable subsystems sit on.
* :mod:`repro.engine.store` — an on-disk SQLite result store mapping run
  keys to serialized results, safe for concurrent writer processes.
* :mod:`repro.engine.pool` — a ``ProcessPoolExecutor`` scheduler that
  deduplicates in-flight requests, streams completion progress, and
  self-heals: worker failures are retried with backoff, hung attempts
  are timed out, and a broken pool is rebuilt (degrading to inline
  execution when it cannot be revived).
* :mod:`repro.engine.faults` — the failure model
  (:class:`~repro.engine.faults.RequestFailure`), the retry/timeout
  policy (:class:`~repro.engine.faults.ExecutionPolicy`), and the
  deterministic fault-injection harness
  (:class:`~repro.engine.faults.FaultPlan`, ``REPRO_FAULTS``).
* :mod:`repro.engine.queue` — a durable SQLite job queue
  (``pending/leased/done/failed``, content-hash job identity) that
  makes campaigns crash-resumable across OS processes.
* :mod:`repro.engine.service` — the lease/heartbeat/reclaim worker
  (:class:`~repro.engine.service.QueueWorker`) that drains a queue,
  embedded in ``repro exp run --queue`` or standalone via
  ``repro worker``.
* :mod:`repro.engine.api` — the :class:`~repro.engine.api.Engine` façade
  (memo → store → execute, with hit/miss counters) and the batch helpers
  ``run_many`` / ``sweep`` that :class:`repro.experiments.runner.\
ExperimentContext` delegates to.

Identical requests are executed exactly once per store lifetime: a cold
``repro figures --all --jobs N`` fans misses out across N worker
processes, and a warm rerun replays everything from the store without
executing a single simulation.
"""

from .api import Completed, Engine, EngineCounters, run_many, sweep
from .backend import SQLiteBackend
from .faults import (ExecutionError, ExecutionPolicy, FaultPlan,
                     InjectedFault, RequestFailure, format_failures)
from .jobs import ENGINE_SCHEMA, MixRequest, RunRequest
from .pool import SimulationPool
from .queue import (JOB_STATES, DispatchReport, JobQueue, JobRecord,
                    Lease)
from .service import QueueWorker, WorkerReport, owner_id
from .store import ResultStore, StoreDecodeError, default_store_path

__all__ = [
    "ENGINE_SCHEMA",
    "JOB_STATES",
    "Completed",
    "DispatchReport",
    "Engine",
    "EngineCounters",
    "ExecutionError",
    "ExecutionPolicy",
    "FaultPlan",
    "InjectedFault",
    "JobQueue",
    "JobRecord",
    "Lease",
    "MixRequest",
    "QueueWorker",
    "RequestFailure",
    "ResultStore",
    "RunRequest",
    "SQLiteBackend",
    "SimulationPool",
    "StoreDecodeError",
    "WorkerReport",
    "default_store_path",
    "format_failures",
    "owner_id",
    "run_many",
    "sweep",
]
