"""Chunked trace streaming: fixed-size instruction blocks on demand.

The materialized path builds a whole :class:`~repro.workloads.trace.Trace`
in memory — three parallel arrays of ``trace_length`` entries — which caps
practical trace lengths and multiplies resident memory under concurrent
pool traffic.  This module is the streaming substrate: a trace becomes a
:class:`TraceStream` that yields fixed-size :class:`TraceBlock`\\ s, so the
simulators (whose run loops already consume the trace through a pre-chunk
seam) hold only O(block_size) instructions at a time.

The generators' scalar reference emitters are reused unchanged: a
producer thread runs them with their *full* instruction budgets against a
:class:`BlockAssembler` (a ``TraceBuilder``-compatible facade), and
:func:`pump_blocks` hands finished blocks across a bounded queue.
Running the emitters with full budgets is what keeps the streamed output
*byte-identical* to the materialized trace — the emitters' budget-clamped
filler near the end of a phase consumes RNG draws as a function of the
total budget, so carving the budget into per-block pieces would change
the stream.  The bounded queue (not the block size) is what bounds
memory: at most ``_QUEUE_DEPTH + 2`` blocks exist at once.

Equivalence with the materialized path at every block size is pinned by
``tests/test_streaming_equivalence.py`` against the 288 golden trace
digests and the golden simulation outputs.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional

import numpy as np

from .trace import Trace

#: finished blocks buffered between the producer thread and the consumer;
#: together with the assembler's working set this bounds resident memory
#: at a few blocks regardless of trace length.
_QUEUE_DEPTH = 4

#: producer-side put timeout (seconds) between abandonment checks.
_PUT_TIMEOUT = 0.1


@dataclass
class TraceBlock:
    """One fixed-size slab of a streamed trace.

    ``start`` is the block's first global instruction index; ``index`` is
    the block ordinal.  The arrays are parallel, in the same dtypes as
    :class:`~repro.workloads.trace.Trace` columns.
    """

    index: int
    start: int
    pcs: np.ndarray
    addrs: np.ndarray
    flags: np.ndarray

    def __len__(self) -> int:
        return len(self.pcs)

    @property
    def stop(self) -> int:
        return self.start + len(self.pcs)


class TraceStream:
    """A trace served as an iterable of :class:`TraceBlock`\\ s.

    ``factory`` returns a fresh block iterator per traversal, so a stream
    can be replayed (the multi-core simulator loops traces back-to-back).
    ``seek``, when provided (the per-chunk disk cache can start reading at
    any chunk), maps a chunk index to an iterator beginning there; without
    it :meth:`iter_from` falls back to skipping from the start.

    ``name`` is deliberately mutable: the materialized composer renames an
    overshooting trace on truncation (``name[0:length]``), which a stream
    only discovers once emission finishes, so producers update it on
    completion.
    """

    def __init__(
        self,
        name: str,
        suite: str,
        length: int,
        block_size: int,
        factory: Callable[[], Iterable[TraceBlock]],
        seek: Optional[Callable[[int], Iterable[TraceBlock]]] = None,
        metadata: Optional[dict] = None,
    ) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.name = name
        self.suite = suite
        self.length = length
        self.block_size = block_size
        self.metadata = metadata or {}
        self._factory = factory
        self._seek = seek

    def __len__(self) -> int:
        return self.length

    @property
    def num_instructions(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[TraceBlock]:
        return iter(self._factory())

    def iter_from(self, position: int) -> Iterator[TraceBlock]:
        """Yield blocks covering global positions ``[position, length)``.

        The first yielded block is trimmed to begin exactly at
        ``position`` (its ``start`` reflects the trim), so a checkpointed
        run can re-enter the measured region without replaying the
        prefix.
        """
        if position <= 0:
            yield from self
            return
        if self._seek is not None:
            blocks = self._seek(position // self.block_size)
        else:
            blocks = self._factory()
        for block in blocks:
            if block.stop <= position:
                continue
            if block.start < position:
                cut = position - block.start
                yield TraceBlock(
                    index=block.index,
                    start=position,
                    pcs=block.pcs[cut:],
                    addrs=block.addrs[cut:],
                    flags=block.flags[cut:],
                )
            else:
                yield block

    def materialize(self) -> Trace:
        """Assemble the whole stream into an in-memory :class:`Trace`.

        Debug/reference helper — it defeats the memory bound on purpose.
        """
        pcs: List[np.ndarray] = []
        addrs: List[np.ndarray] = []
        flags: List[np.ndarray] = []
        for block in self:
            pcs.append(block.pcs)
            addrs.append(block.addrs)
            flags.append(block.flags)
        if pcs:
            parts = (np.concatenate(pcs), np.concatenate(addrs),
                     np.concatenate(flags))
        else:
            parts = (np.empty(0, np.int64), np.empty(0, np.int64),
                     np.empty(0, np.uint8))
        return Trace(
            name=self.name,
            suite=self.suite,
            pcs=parts[0],
            addrs=parts[1],
            flags=parts[2],
            metadata=dict(self.metadata),
        )


class BlockAssembler:
    """``TraceBuilder``-compatible facade that emits fixed-size blocks.

    The generators' scalar emitters write into it exactly as they write
    into a :class:`~repro.workloads.trace.TraceBuilder`; whenever a full
    ``block_size`` worth of instructions has accumulated, the assembler
    hands one :class:`TraceBlock` to ``emit`` and drops its rows.

    ``__len__`` counts *every* row ever appended — including rows past
    ``limit``, which are dropped rather than buffered.  That matches the
    materialized composer's arithmetic exactly: there the builder keeps
    overshoot rows and ``_compose`` truncates with ``trace.slice``; here
    the truncation happens at append time, but the pad-to-length check
    (``len(builder) < length``) still sees the same count.
    """

    def __init__(
        self,
        block_size: int,
        emit: Callable[[TraceBlock], None],
        limit: Optional[int] = None,
    ) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self._block_size = block_size
        self._emit = emit
        self._limit = limit
        self._count = 0  # total rows appended (TraceBuilder length)
        self._kept = 0  # rows not dropped by the limit
        # open scalar segment + closed numpy segments, as in TraceBuilder
        self._pcs: list = []
        self._addrs: list = []
        self._flags: list = []
        self._segments: list = []
        self._buffered = 0
        self._next_index = 0
        self._next_start = 0

    def __len__(self) -> int:
        return self._count

    # -- TraceBuilder append API -------------------------------------------

    def add(self, pc: int, addr: int = 0, flags: int = 0) -> None:
        self._count += 1
        if self._limit is not None and self._kept >= self._limit:
            return
        self._kept += 1
        self._pcs.append(pc)
        self._addrs.append(addr)
        self._flags.append(flags)
        self._buffered += 1
        if self._buffered >= self._block_size:
            self._drain()

    def extend(
        self, pcs: np.ndarray, addrs: np.ndarray, flags: np.ndarray
    ) -> None:
        if not (len(pcs) == len(addrs) == len(flags)):
            raise ValueError("extend() arrays must be parallel")
        n = len(pcs)
        self._count += n
        if n == 0:
            return
        if self._limit is not None:
            room = self._limit - self._kept
            if room <= 0:
                return
            if n > room:
                pcs, addrs, flags, n = pcs[:room], addrs[:room], \
                    flags[:room], room
        self._kept += n
        self._close_scalar_segment()
        self._segments.append((
            np.asarray(pcs, dtype=np.int64),
            np.asarray(addrs, dtype=np.int64),
            np.asarray(flags, dtype=np.uint8),
        ))
        self._buffered += n
        if self._buffered >= self._block_size:
            self._drain()

    def load(self, pc: int, addr: int, dependent: bool = False) -> None:
        from .trace import FLAG_DEP, FLAG_LOAD
        self.add(pc, addr, FLAG_LOAD | (FLAG_DEP if dependent else 0))

    def store(self, pc: int, addr: int) -> None:
        from .trace import FLAG_STORE
        self.add(pc, addr, FLAG_STORE)

    def nop(self, pc: int, count: int = 1) -> None:
        for _ in range(count):
            self.add(pc, 0, 0)

    def branch(self, pc: int, mispredicted: bool = False) -> None:
        from .trace import FLAG_BRANCH, FLAG_MISPRED
        self.add(pc, 0, FLAG_BRANCH | (FLAG_MISPRED if mispredicted else 0))

    # -- block assembly -----------------------------------------------------

    def _close_scalar_segment(self) -> None:
        if self._pcs:
            self._segments.append((
                np.asarray(self._pcs, dtype=np.int64),
                np.asarray(self._addrs, dtype=np.int64),
                np.asarray(self._flags, dtype=np.uint8),
            ))
            self._pcs, self._addrs, self._flags = [], [], []

    def _pop_block(self, size: int) -> TraceBlock:
        """Assemble exactly ``size`` rows from the front of the buffer."""
        parts: list = []
        need = size
        while need:
            seg = self._segments[0]
            avail = len(seg[0])
            if avail <= need:
                parts.append(seg)
                self._segments.pop(0)
                need -= avail
            else:
                parts.append(tuple(col[:need] for col in seg))
                self._segments[0] = tuple(col[need:] for col in seg)
                need = 0
        if len(parts) == 1:
            pcs, addrs, flags = parts[0]
        else:
            pcs, addrs, flags = (
                np.concatenate([seg[col] for seg in parts])
                for col in range(3)
            )
        block = TraceBlock(
            index=self._next_index,
            start=self._next_start,
            pcs=pcs,
            addrs=addrs,
            flags=flags,
        )
        self._next_index += 1
        self._next_start += size
        self._buffered -= size
        return block

    def _drain(self) -> None:
        self._close_scalar_segment()
        while self._buffered >= self._block_size:
            self._emit(self._pop_block(self._block_size))

    def finish(self) -> int:
        """Flush the partial tail block; return the total row count."""
        self._close_scalar_segment()
        self._drain()
        if self._buffered:
            self._emit(self._pop_block(self._buffered))
        return self._count


class _Abandoned(Exception):
    """Raised inside the producer thread when the consumer went away."""


def pump_blocks(
    producer: Callable[[BlockAssembler], None],
    block_size: int,
    limit: int,
    on_complete: Optional[Callable[[int], None]] = None,
) -> Iterator[TraceBlock]:
    """Run ``producer`` in a thread; yield its blocks as they finish.

    ``producer(assembler)`` writes the whole trace through a
    :class:`BlockAssembler` capped at ``limit`` rows.  Blocks cross a
    bounded queue, so the producer stalls once ``_QUEUE_DEPTH`` blocks
    are waiting — resident memory stays O(block_size) however long the
    trace is.  ``on_complete(total_rows)`` fires after the last block
    (the total includes dropped overshoot rows, letting callers mirror
    the materialized path's truncation rename).

    Abandoning the generator (break / close) flags the producer thread,
    which aborts at its next queue put.
    """
    out: "queue.Queue" = queue.Queue(maxsize=_QUEUE_DEPTH)
    abandoned = threading.Event()

    def put(item) -> None:
        while True:
            try:
                out.put(item, timeout=_PUT_TIMEOUT)
                return
            except queue.Full:
                if abandoned.is_set():
                    raise _Abandoned from None

    def run() -> None:
        try:
            assembler = BlockAssembler(
                block_size, lambda block: put(("block", block)), limit=limit
            )
            producer(assembler)
            put(("done", assembler.finish()))
        except _Abandoned:
            pass
        except BaseException as exc:  # surfaced on the consumer side
            try:
                put(("error", exc))
            except _Abandoned:
                pass

    thread = threading.Thread(target=run, name="trace-pump", daemon=True)
    thread.start()
    try:
        while True:
            kind, payload = out.get()
            if kind == "block":
                yield payload
            elif kind == "done":
                if on_complete is not None:
                    on_complete(payload)
                return
            else:
                raise payload
    finally:
        abandoned.set()
        while True:  # unblock a producer stuck on a full queue
            try:
                out.get_nowait()
            except queue.Empty:
                break
        thread.join(timeout=5.0)


def blocks_from_trace(
    trace: Trace, block_size: int, start_index: int = 0
) -> Iterator[TraceBlock]:
    """Re-block a materialized trace (views, no copies).

    ``start_index`` makes this double as the ``seek`` callable for
    streams backed by whole-trace storage tiers.
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    n = len(trace)
    for index in range(start_index, -(-n // block_size) if n else 0):
        lo = index * block_size
        hi = min(lo + block_size, n)
        yield TraceBlock(
            index=index,
            start=lo,
            pcs=trace.pcs[lo:hi],
            addrs=trace.addrs[lo:hi],
            flags=trace.flags[lo:hi],
        )


def reblock(
    rows: Iterable, block_size: int, limit: Optional[int] = None
) -> Iterator[TraceBlock]:
    """Repack arbitrary ``(pcs, addrs, flags)`` array triples into
    fixed-size blocks — the adapter-facing half of the block API
    (external trace files arrive in whatever chunks the parser found
    convenient)."""
    collected: list = []

    def emit(block: TraceBlock) -> None:
        collected.append(block)

    assembler = BlockAssembler(block_size, emit, limit=limit)
    for pcs, addrs, flags in rows:
        assembler.extend(pcs, addrs, flags)
        while collected:
            yield collected.pop(0)
    assembler.finish()
    while collected:
        yield collected.pop(0)
