"""Tests for the banked DRAM bandwidth model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.dram import MainMemory
from repro.sim.params import DramParams


def dram(bandwidth_gbps=3.2, banks=8):
    return MainMemory(DramParams(bandwidth_gbps=bandwidth_gbps,
                                 num_banks=banks))


class TestLatencyComposition:
    def test_cold_access_pays_activation_and_transfer(self):
        mem = dram()
        result = mem.access(0.0, 100, MainMemory.DEMAND)
        params = DramParams(bandwidth_gbps=3.2)
        expected = params.t_rcd + params.t_cas + params.line_transfer_cycles
        assert result.completion_time == pytest.approx(expected)
        assert not result.row_hit

    def test_row_hit_is_cheaper(self):
        mem = dram()
        first = mem.access(0.0, 100, MainMemory.DEMAND)
        second = mem.access(first.completion_time, 101, MainMemory.DEMAND)
        assert second.row_hit
        assert (second.completion_time - first.completion_time) < (
            first.completion_time
        )

    def test_row_conflict_pays_precharge(self):
        mem = dram(banks=1)
        lines_per_row = DramParams().lines_per_row
        r1 = mem.access(0.0, 0, MainMemory.DEMAND)
        # Different row, same (only) bank => precharge penalty.
        r2 = mem.access(10_000.0, lines_per_row * 5, MainMemory.DEMAND)
        params = DramParams()
        expected = (params.t_rp + params.t_rcd + params.t_cas
                    + params.line_transfer_cycles)
        assert r2.completion_time - 10_000.0 == pytest.approx(expected)
        assert not r2.row_hit
        assert r1.completion_time < 10_000.0

    def test_unknown_kind_rejected(self):
        mem = dram()
        with pytest.raises(ValueError):
            mem.access(0.0, 1, "bogus")


class TestBandwidthContention:
    def test_burst_queues_on_data_bus(self):
        """Simultaneous requests serialise at line_transfer_cycles apart."""
        mem = dram()
        transfer = DramParams(bandwidth_gbps=3.2).line_transfer_cycles
        completions = [
            mem.access(0.0, line * 1000, MainMemory.DEMAND).completion_time
            for line in range(8)
        ]
        gaps = [b - a for a, b in zip(completions, completions[1:])]
        for gap in gaps:
            assert gap >= transfer - 1e-9

    def test_higher_bandwidth_shortens_transfer(self):
        slow = dram(bandwidth_gbps=1.6)
        fast = dram(bandwidth_gbps=12.8)
        s = slow.access(0.0, 1, MainMemory.DEMAND).completion_time
        f = fast.access(0.0, 1, MainMemory.DEMAND).completion_time
        assert f < s

    def test_prefetch_traffic_delays_demand(self):
        """The mechanism behind prefetcher-adverse behaviour: prefetch
        transfers occupy the same bus demands need."""
        quiet = dram()
        demand_alone = quiet.access(0.0, 1, MainMemory.DEMAND).completion_time

        busy = dram()
        for line in range(6):
            busy.access(0.0, 10_000 + line * 999, MainMemory.PREFETCH)
        demand_contended = busy.access(0.0, 1, MainMemory.DEMAND).completion_time
        assert demand_contended > demand_alone

    def test_busy_cycles_accumulate_per_transfer(self):
        mem = dram()
        transfer = DramParams(bandwidth_gbps=3.2).line_transfer_cycles
        for line in range(5):
            mem.access(0.0, line, MainMemory.DEMAND)
        assert mem.busy_cycles == pytest.approx(5 * transfer)

    def test_bandwidth_usage_fraction(self):
        mem = dram()
        mem.access(0.0, 1, MainMemory.DEMAND)
        transfer = DramParams(bandwidth_gbps=3.2).line_transfer_cycles
        assert mem.bandwidth_usage(10 * transfer) == pytest.approx(0.1)
        assert mem.bandwidth_usage(0.0) == 0.0
        assert mem.bandwidth_usage(0.5 * transfer) == 1.0  # capped


class TestAccounting:
    def test_requests_partitioned_by_kind(self):
        mem = dram()
        mem.access(0.0, 1, MainMemory.DEMAND)
        mem.access(0.0, 2, MainMemory.PREFETCH)
        mem.access(0.0, 3, MainMemory.OCP)
        mem.access(0.0, 4, MainMemory.WRITEBACK)
        mem.access(0.0, 5, MainMemory.DEMAND)
        assert mem.requests_by_kind[MainMemory.DEMAND] == 2
        assert mem.requests_by_kind[MainMemory.PREFETCH] == 1
        assert mem.requests_by_kind[MainMemory.OCP] == 1
        assert mem.requests_by_kind[MainMemory.WRITEBACK] == 1
        assert mem.total_requests == 5

    def test_snapshot_is_independent_copy(self):
        mem = dram()
        snap = mem.snapshot()
        mem.access(0.0, 1, MainMemory.DEMAND)
        assert snap["demand"] == 0
        assert mem.snapshot()["demand"] == 1

    def test_paper_bandwidth_mapping(self):
        """3.2 GB/s at 4 GHz core = 0.8 B/cycle = 80 cycles per line."""
        params = DramParams(bandwidth_gbps=3.2)
        assert params.bytes_per_cycle == pytest.approx(0.8)
        assert params.line_transfer_cycles == pytest.approx(80.0)


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e5, allow_nan=False),
                st.integers(min_value=0, max_value=2**24),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_completion_always_after_request(self, requests):
        mem = dram()
        requests.sort()
        for now, line in requests:
            result = mem.access(now, line, MainMemory.DEMAND)
            assert result.completion_time > now

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_busy_cycles_proportional_to_requests(self, n):
        mem = dram()
        for line in range(n):
            mem.access(0.0, line * 17, MainMemory.DEMAND)
        transfer = DramParams(bandwidth_gbps=3.2).line_transfer_cycles
        assert mem.busy_cycles == pytest.approx(n * transfer)
