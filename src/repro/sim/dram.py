"""Banked main-memory model with an explicit data-bus occupancy model.

The key property the paper's results depend on is *bandwidth contention*:
every 64-byte transfer (demand, prefetch, OCP speculative fetch, writeback)
occupies the shared data bus for ``line_transfer_cycles`` — 80 core cycles
at the default 3.2 GB/s.  Useless prefetch and OCP traffic therefore delays
demand requests, which is what makes prefetchers performance-negative in
bandwidth-constrained configurations (paper §2.1.1, Figure 14).

Per-bank row-buffer state provides the row-hit/row-miss latency split
(tCAS vs tRP+tRCD+tCAS) of Table 5.

Request counts are kept as four scalar counters; :meth:`kind_counts`
snapshots them as a tuple (no per-epoch dict copies) and the
``requests_by_kind`` property materializes the legacy dict on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .params import DramParams


@dataclass
class DramAccessResult:
    completion_time: float
    queue_delay: float
    row_hit: bool


#: Order of per-kind counters in :meth:`MainMemory.kind_counts` tuples.
KIND_ORDER = ("demand", "prefetch", "ocp", "writeback")


class MainMemory:
    """Single-channel DRAM shared by all requestors of one (or more) cores."""

    DEMAND = "demand"
    PREFETCH = "prefetch"
    OCP = "ocp"
    WRITEBACK = "writeback"

    def __init__(self, params: DramParams) -> None:
        self.params = params
        self._bank_free = [0.0] * params.num_banks
        self._open_row = [-1] * params.num_banks
        self._bus_free = 0.0
        self._busy_cycles = 0.0
        self._demand_requests = 0
        self._prefetch_requests = 0
        self._ocp_requests = 0
        self._writeback_requests = 0
        self._num_banks = params.num_banks
        self._lines_per_row = params.lines_per_row
        # Shift/mask fast paths when the geometry is power-of-two (line
        # addresses are non-negative, so shift == floor-division).
        lpr = params.lines_per_row
        self._row_shift = (
            lpr.bit_length() - 1 if lpr > 0 and lpr & (lpr - 1) == 0 else -1
        )
        banks = params.num_banks
        self._bank_mask = (
            banks - 1 if banks > 0 and banks & (banks - 1) == 0 else -1
        )
        self._t_cas = params.t_cas
        self._t_rcd_cas = params.t_rcd + params.t_cas
        self._t_rp_rcd_cas = params.t_rp + params.t_rcd + params.t_cas
        self._transfer = params.line_transfer_cycles

    def access(self, now: float, line_addr: int, kind: str) -> DramAccessResult:
        """Issue one line transfer at time ``now``; returns completion time.

        The request first waits for its bank (row activation), then for the
        shared data bus.  Both resources are modelled as next-free-time
        scalars, so a burst of requests sees linearly growing queue delay —
        the bandwidth wall.
        """
        if kind == "demand":
            self._demand_requests += 1
        elif kind == "prefetch":
            self._prefetch_requests += 1
        elif kind == "ocp":
            self._ocp_requests += 1
        elif kind == "writeback":
            self._writeback_requests += 1
        else:
            raise ValueError(f"unknown DRAM request kind {kind!r}")

        row = line_addr // self._lines_per_row
        bank = row % self._num_banks
        open_rows = self._open_row
        bank_free = self._bank_free

        free_at = bank_free[bank]
        bank_ready = now if now >= free_at else free_at
        open_row = open_rows[bank]
        if open_row == row:
            access_latency = self._t_cas
            row_hit = True
        elif open_row == -1:
            access_latency = self._t_rcd_cas
            row_hit = False
        else:
            access_latency = self._t_rp_rcd_cas
            row_hit = False
        open_rows[bank] = row

        data_ready = bank_ready + access_latency
        bus_free = self._bus_free
        transfer_start = data_ready if data_ready >= bus_free else bus_free
        transfer = self._transfer
        completion = transfer_start + transfer

        self._bus_free = completion
        bank_free[bank] = data_ready
        self._busy_cycles += transfer

        queue_delay = completion - now - access_latency - transfer
        return DramAccessResult(
            completion_time=completion,
            queue_delay=max(0.0, queue_delay),
            row_hit=row_hit,
        )

    def access_time(self, now: float, line_addr: int, kind: str) -> float:
        """Hot-path :meth:`access`: same state updates, returns only the
        completion time (no per-request result object)."""
        if kind == "demand":
            self._demand_requests += 1
        elif kind == "prefetch":
            self._prefetch_requests += 1
        elif kind == "ocp":
            self._ocp_requests += 1
        elif kind == "writeback":
            self._writeback_requests += 1
        else:
            raise ValueError(f"unknown DRAM request kind {kind!r}")

        row_shift = self._row_shift
        if row_shift >= 0:
            row = line_addr >> row_shift
        else:
            row = line_addr // self._lines_per_row
        bank_mask = self._bank_mask
        bank = row & bank_mask if bank_mask >= 0 else row % self._num_banks
        open_rows = self._open_row
        bank_free = self._bank_free

        free_at = bank_free[bank]
        bank_ready = now if now >= free_at else free_at
        open_row = open_rows[bank]
        if open_row == row:
            access_latency = self._t_cas
        elif open_row == -1:
            access_latency = self._t_rcd_cas
        else:
            access_latency = self._t_rp_rcd_cas
        open_rows[bank] = row

        data_ready = bank_ready + access_latency
        bus_free = self._bus_free
        transfer_start = data_ready if data_ready >= bus_free else bus_free
        completion = transfer_start + self._transfer

        self._bus_free = completion
        bank_free[bank] = data_ready
        self._busy_cycles += self._transfer
        return completion

    # -- telemetry -----------------------------------------------------------

    def kind_counts(self) -> Tuple[int, int, int, int]:
        """(demand, prefetch, ocp, writeback) counts — cheap epoch snapshot."""
        return (
            self._demand_requests,
            self._prefetch_requests,
            self._ocp_requests,
            self._writeback_requests,
        )

    @property
    def requests_by_kind(self) -> Dict[str, int]:
        """Per-kind request counts as a dict (legacy interface)."""
        return {
            self.DEMAND: self._demand_requests,
            self.PREFETCH: self._prefetch_requests,
            self.OCP: self._ocp_requests,
            self.WRITEBACK: self._writeback_requests,
        }

    @property
    def next_bus_free(self) -> float:
        """Earliest time a new transfer could start on the data bus."""
        return self._bus_free

    @property
    def total_requests(self) -> int:
        return (
            self._demand_requests + self._prefetch_requests
            + self._ocp_requests + self._writeback_requests
        )

    @property
    def busy_cycles(self) -> float:
        """Cumulative data-bus occupancy, for bandwidth-usage features."""
        return self._busy_cycles

    def bandwidth_usage(self, elapsed_cycles: float) -> float:
        """Fraction of peak bandwidth consumed over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self._busy_cycles / elapsed_cycles)

    def snapshot(self) -> dict:
        snap = dict(self.requests_by_kind)
        snap["busy_cycles"] = self._busy_cycles
        return snap
