"""TLP — Two Level Perceptron (Jamet+, HPCA 2024).

TLP couples off-chip prediction with *adaptive prefetch filtering at the
L1D*: its first-level perceptron predicts whether a load goes off-chip;
its second level filters L1D prefetch requests that are predicted to be
filled from off-chip main memory, based on the empirical observation that
such fills are usually inaccurate.

Two properties matter for the paper's comparison (§2.1.3, §7.1):

* TLP acts per *request*, not per epoch — both mechanisms stay enabled and
  only individual L1D prefetches are dropped; and
* TLP has **no control over prefetchers beyond the L1D**, so an L2C
  prefetcher (e.g. Pythia in CD4) runs unthrottled.

The filter here uses its own hashed perceptron (same feature construction
as the first level) trained on the resolved off-chip outcome of demand
loads, with the thresholds (tau_low/tau_high/tau_pref) acting as the
prediction and filtering cut-offs.
"""

from __future__ import annotations

from ..sim.stats import EpochTelemetry
from .base import CoordinationAction, CoordinationPolicy

_TABLE_SIZE = 1024
_NUM_FEATURES = 4
_WEIGHT_MAX = 15
_WEIGHT_MIN = -16
_TAU_LOW = -4
_TAU_HIGH = 10
_TAU_PREF = 2


def _hash(value: int) -> int:
    value = (value * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 31
    return value % _TABLE_SIZE


class TlpPolicy(CoordinationPolicy):
    """OCP-hinted L1D prefetch filtering; everything else always on."""

    def __init__(self) -> None:
        super().__init__()
        self._weights = [[0] * _TABLE_SIZE for _ in range(_NUM_FEATURES)]
        self.filtered_prefetches = 0
        self.allowed_prefetches = 0

    # -- perceptron ---------------------------------------------------------------

    @staticmethod
    def _features(pc: int, line_addr: int):
        ip = pc >> 2
        offset = line_addr & 0x3F
        return (
            _hash(ip),
            _hash(line_addr),
            _hash(ip ^ (offset << 16)),
            _hash(line_addr >> 6),
        )

    def _score(self, pc: int, line_addr: int) -> int:
        return sum(
            self._weights[f][i]
            for f, i in enumerate(self._features(pc, line_addr))
        )

    def _train(self, pc: int, line_addr: int, went_offchip: bool) -> None:
        score = self._score(pc, line_addr)
        if went_offchip and score > _TAU_HIGH:
            return
        if not went_offchip and score < _TAU_LOW:
            return
        step = 1 if went_offchip else -1
        for f, i in enumerate(self._features(pc, line_addr)):
            w = self._weights[f][i] + step
            self._weights[f][i] = max(_WEIGHT_MIN, min(_WEIGHT_MAX, w))

    # -- hierarchy hooks ------------------------------------------------------------

    def attach(self, hierarchy) -> None:
        super().attach(hierarchy)
        hierarchy.prefetch_filter = self._filter
        hierarchy.observers.append(self)

    def on_demand_load(self, pc: int, line_addr: int, went_offchip: bool) -> None:
        """Observer hook: train the perceptron on resolved outcomes."""
        self._train(pc, line_addr, went_offchip)

    def _filter(self, pc: int, line_addr: int, level: str) -> bool:
        """Return False to drop the prefetch (L1D only, per the design).

        TLP filters L1D prefetches *predicted to be filled from off-chip
        main memory* (the empirical rule behind the design: such fills are
        usually inaccurate).  The first-level perceptron's fill-source
        prediction is highly accurate in the paper, so we model it as an
        on-chip presence probe of the prefetch address: an L2C or LLC hit
        means the fill is on-chip and the prefetch is kept; anything else
        would be filled from DRAM and is dropped.

        This is exactly what makes TLP shine on prefetcher-adverse
        workloads (off-chip junk prefetches are dropped) and lose on
        prefetcher-friendly ones (useful first-touch stream prefetches
        are *also* off-chip fills, and are dropped too — paper §7.1.2).
        The perceptron is still trained on resolved demand outcomes; its
        prediction drives the OCP-side statistics and the storage audit.
        """
        if level != "l1d":
            return True
        hierarchy = self.hierarchy
        on_chip = (
            hierarchy is not None
            and (hierarchy.l2c.probe(line_addr)
                 or hierarchy.llc.probe(line_addr))
        )
        if not on_chip:
            self.filtered_prefetches += 1
            return False
        self.allowed_prefetches += 1
        return True

    # -- epoch decision: static (both mechanisms stay on) --------------------------

    def decide(self, telemetry: EpochTelemetry) -> CoordinationAction:
        action = self.all_on_action()
        self.record(action)
        return action

    def storage_bits(self) -> int:
        """Paper Table 8 lists TLP at 6.98 KB."""
        return _NUM_FEATURES * _TABLE_SIZE * 5 + 512
