"""Banked main-memory model with an explicit data-bus occupancy model.

The key property the paper's results depend on is *bandwidth contention*:
every 64-byte transfer (demand, prefetch, OCP speculative fetch, writeback)
occupies the shared data bus for ``line_transfer_cycles`` — 80 core cycles
at the default 3.2 GB/s.  Useless prefetch and OCP traffic therefore delays
demand requests, which is what makes prefetchers performance-negative in
bandwidth-constrained configurations (paper §2.1.1, Figure 14).

Per-bank row-buffer state provides the row-hit/row-miss latency split
(tCAS vs tRP+tRCD+tCAS) of Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from .params import DramParams


@dataclass
class DramAccessResult:
    completion_time: float
    queue_delay: float
    row_hit: bool


class MainMemory:
    """Single-channel DRAM shared by all requestors of one (or more) cores."""

    DEMAND = "demand"
    PREFETCH = "prefetch"
    OCP = "ocp"
    WRITEBACK = "writeback"

    def __init__(self, params: DramParams) -> None:
        self.params = params
        self._bank_free = [0.0] * params.num_banks
        self._open_row = [-1] * params.num_banks
        self._bus_free = 0.0
        self._busy_cycles = 0.0
        self.requests_by_kind = {
            self.DEMAND: 0,
            self.PREFETCH: 0,
            self.OCP: 0,
            self.WRITEBACK: 0,
        }

    def _locate(self, line_addr: int):
        lines_per_row = self.params.lines_per_row
        row = line_addr // lines_per_row
        bank = row % self.params.num_banks
        return bank, row

    def access(self, now: float, line_addr: int, kind: str) -> DramAccessResult:
        """Issue one line transfer at time ``now``; returns completion time.

        The request first waits for its bank (row activation), then for the
        shared data bus.  Both resources are modelled as next-free-time
        scalars, so a burst of requests sees linearly growing queue delay —
        the bandwidth wall.
        """
        if kind not in self.requests_by_kind:
            raise ValueError(f"unknown DRAM request kind {kind!r}")
        self.requests_by_kind[kind] += 1

        bank, row = self._locate(line_addr)
        p = self.params

        bank_ready = max(now, self._bank_free[bank])
        if self._open_row[bank] == row:
            access_latency = p.t_cas
            row_hit = True
        elif self._open_row[bank] == -1:
            access_latency = p.t_rcd + p.t_cas
            row_hit = False
        else:
            access_latency = p.t_rp + p.t_rcd + p.t_cas
            row_hit = False
        self._open_row[bank] = row

        data_ready = bank_ready + access_latency
        transfer_start = max(data_ready, self._bus_free)
        transfer = p.line_transfer_cycles
        completion = transfer_start + transfer

        self._bus_free = completion
        self._bank_free[bank] = data_ready
        self._busy_cycles += transfer

        queue_delay = completion - now - access_latency - transfer
        return DramAccessResult(
            completion_time=completion,
            queue_delay=max(0.0, queue_delay),
            row_hit=row_hit,
        )

    # -- telemetry -----------------------------------------------------------

    @property
    def next_bus_free(self) -> float:
        """Earliest time a new transfer could start on the data bus."""
        return self._bus_free

    @property
    def total_requests(self) -> int:
        return sum(self.requests_by_kind.values())

    @property
    def busy_cycles(self) -> float:
        """Cumulative data-bus occupancy, for bandwidth-usage features."""
        return self._busy_cycles

    def bandwidth_usage(self, elapsed_cycles: float) -> float:
        """Fraction of peak bandwidth consumed over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self._busy_cycles / elapsed_cycles)

    def snapshot(self) -> dict:
        snap = dict(self.requests_by_kind)
        snap["busy_cycles"] = self._busy_cycles
        return snap
