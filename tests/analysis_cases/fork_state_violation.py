"""Fixture: ambient module-level state mutated with no drain API."""

_pending = {}


def record(key, value):
    _pending[key] = value  # expect: fork-state-hygiene


def lookup(key):
    return _pending.get(key)
