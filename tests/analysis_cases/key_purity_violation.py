"""Fixture: host state read inside the content-key call graph."""

import os
import socket


def _env_salt():
    return os.environ.get("SALT", "")  # expect: key-purity


def _host():
    return socket.gethostname()  # expect: key-purity


def canonical_recipe(spec):
    return {"spec": spec, "salt": _env_salt(), "host": _host()}
