"""Tests for trace serialization (save/load round trips + corruption)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.generators import GENERATORS
from repro.workloads.traceio import (
    FORMAT_VERSION,
    TraceFormatError,
    load_trace,
    save_trace,
)


def make(pattern="graph", seed=3, length=1_200):
    return GENERATORS[pattern]("io-test", "test", seed, length)


class TestRoundTrip:
    def test_arrays_and_identity_preserved(self, tmp_path):
        trace = make()
        path = save_trace(trace, tmp_path / "t.npz")
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.suite == trace.suite
        assert np.array_equal(loaded.pcs, trace.pcs)
        assert np.array_equal(loaded.addrs, trace.addrs)
        assert np.array_equal(loaded.flags, trace.flags)
        assert loaded.metadata == trace.metadata

    def test_suffix_appended(self, tmp_path):
        path = save_trace(make(), tmp_path / "t")
        assert path.suffix == ".npz"
        assert path.exists()

    @pytest.mark.parametrize("name", [
        "spec06.mcf_like.0",      # registry names are multi-dot
        "google.sierra.a.3",
        "v1.2",
        "trailing.",              # Path.with_suffix would corrupt these
        "trace.0.bak",
    ])
    def test_multi_dot_names_append_cleanly(self, tmp_path, name):
        """``.npz`` is appended to the full name, never spliced into it."""
        path = save_trace(make(), tmp_path / name)
        assert path.name == name + ".npz"
        assert load_trace(path).name == "io-test"

    def test_existing_npz_suffix_not_doubled(self, tmp_path):
        path = save_trace(make(), tmp_path / "t.npz")
        assert path.name == "t.npz"

    def test_nested_directory_created(self, tmp_path):
        path = save_trace(make(), tmp_path / "a" / "b" / "t.npz")
        assert path.exists()

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**20),
           pattern=st.sampled_from(sorted(GENERATORS)))
    def test_every_pattern_roundtrips(self, tmp_path_factory, seed, pattern):
        trace = make(pattern, seed, 800)
        path = save_trace(
            trace, tmp_path_factory.mktemp("traces") / f"{pattern}.npz"
        )
        loaded = load_trace(path)
        assert np.array_equal(loaded.addrs, trace.addrs)

    def test_loaded_trace_simulates_identically(self, tmp_path):
        from repro.experiments.configs import CacheDesign, build_hierarchy
        from repro.sim.simulator import Simulator

        trace = make(length=2_000)
        loaded = load_trace(save_trace(trace, tmp_path / "t.npz"))
        a = Simulator(trace, build_hierarchy(CacheDesign.cd1()),
                      epoch_length=200).run()
        b = Simulator(loaded, build_hierarchy(CacheDesign.cd1()),
                      epoch_length=200).run()
        assert a.cycles == b.cycles


class TestCorruption:
    def test_not_an_archive(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        bogus.write_bytes(b"definitely not a zip file")
        with pytest.raises(TraceFormatError):
            load_trace(bogus)

    def test_missing_array(self, tmp_path):
        incomplete = tmp_path / "incomplete.npz"
        np.savez(incomplete, pcs=np.zeros(4, dtype=np.int64))
        with pytest.raises(TraceFormatError, match="missing arrays"):
            load_trace(incomplete)

    def test_version_mismatch(self, tmp_path):
        import json

        trace = make(length=600)
        header = {
            "format_version": FORMAT_VERSION + 1,
            "name": "x", "suite": "y", "metadata": {},
            "num_instructions": len(trace),
        }
        path = tmp_path / "future.npz"
        np.savez(
            path, pcs=trace.pcs, addrs=trace.addrs, flags=trace.flags,
            header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        )
        with pytest.raises(TraceFormatError, match="format version"):
            load_trace(path)

    def test_length_mismatch(self, tmp_path):
        import json

        trace = make(length=600)
        header = {
            "format_version": FORMAT_VERSION,
            "name": "x", "suite": "y", "metadata": {},
            "num_instructions": 599,  # lies
        }
        path = tmp_path / "short.npz"
        np.savez(
            path, pcs=trace.pcs, addrs=trace.addrs, flags=trace.flags,
            header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        )
        with pytest.raises(TraceFormatError, match="length mismatch"):
            load_trace(path)
