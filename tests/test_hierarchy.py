"""Integration tests for the cache hierarchy (demand/prefetch/OCP paths)."""

import pytest

from repro.ocp.base import OffChipPredictor
from repro.prefetchers.base import Prefetcher
from repro.sim.hierarchy import CacheHierarchy
from repro.sim.params import scaled_system


class AlwaysOffchipOcp(OffChipPredictor):
    """Test double: predicts off-chip unconditionally."""

    def _predict(self, pc, line_addr, byte_offset):
        return True

    def train(self, pc, line_addr, went_offchip, byte_offset=0):
        self.last_outcome = went_offchip

    def storage_bits(self):
        return 0


class NeverOffchipOcp(OffChipPredictor):
    def _predict(self, pc, line_addr, byte_offset):
        return False

    def train(self, pc, line_addr, went_offchip, byte_offset=0):
        pass

    def storage_bits(self):
        return 0


class NextLinePf(Prefetcher):
    level = "l2c"
    max_degree = 2

    def _train_and_predict(self, pc, line_addr, hit):
        return [line_addr + 1, line_addr + 2]

    def storage_bits(self):
        return 0


class L1NextLinePf(NextLinePf):
    level = "l1d"


def make_hierarchy(**kwargs):
    return CacheHierarchy(scaled_system(), **kwargs)


def addr(line, offset=0):
    return (line << 6) | offset


class TestDemandPath:
    def test_cold_load_goes_offchip(self):
        h = make_hierarchy()
        result = h.load(0x400, addr(100), 0.0)
        assert result.went_offchip
        assert h.stats.llc_misses == 1
        assert h.stats.dram_demand_requests == 1

    def test_second_load_hits_l1(self):
        h = make_hierarchy()
        h.load(0x400, addr(100), 0.0)
        result = h.load(0x400, addr(100), 1000.0)
        assert not result.went_offchip
        assert result.latency == pytest.approx(h.params.l1d.latency)

    def test_miss_latency_exceeds_onchip_lookup(self):
        h = make_hierarchy()
        result = h.load(0x400, addr(100), 0.0)
        onchip = (h.params.l1d.latency + h.params.l2c.latency
                  + h.params.llc.latency)
        assert result.latency > onchip

    def test_llc_hit_after_l1_l2_eviction(self):
        h = make_hierarchy()
        h.load(0x400, addr(5), 0.0)
        # Evict line 5 from L1 (4-way, 16 sets => 5 conflicting fills).
        for k in range(1, 8):
            h.load(0x400, addr(5 + 16 * k), 10.0 * k)
        h.l1d.invalidate(5)
        h.l2c.invalidate(5)
        result = h.load(0x400, addr(5), 1e6)
        assert not result.went_offchip
        assert result.latency >= h.params.llc.latency

    def test_in_flight_line_waits_for_arrival(self):
        """A demand hitting a line still in flight pays the remaining
        fill time (MSHR merge), not just the lookup latency."""
        h = make_hierarchy(prefetchers=[NextLinePf()])
        h.load(0x400, addr(100), 0.0)  # prefetches 101 at t=0
        result = h.load(0x400, addr(101), 1.0)
        assert not result.went_offchip
        assert result.latency > h.params.l1d.latency + h.params.l2c.latency

    def test_store_traffic_counted_but_fast(self):
        h = make_hierarchy()
        latency = h.store(0x400, addr(100), 0.0)
        assert latency == 1.0
        assert h.stats.dram_demand_requests == 1

    def test_dirty_llc_eviction_writes_back(self):
        h = make_hierarchy()
        h.store(0x400, addr(7), 0.0)
        sets = h.llc.num_sets
        conflicts = 0
        t = 100.0
        while h.stats.dram_writeback_requests == 0 and conflicts < 20:
            conflicts += 1
            h.load(0x400, addr(7 + sets * conflicts), t)
            t += 100.0
        assert h.stats.dram_writeback_requests >= 1


class TestOcpPath:
    def test_correct_prediction_faster_than_plain_miss(self):
        plain = make_hierarchy()
        plain_latency = plain.load(0x400, addr(100), 0.0).latency
        assisted = make_hierarchy(ocp=AlwaysOffchipOcp())
        assisted_latency = assisted.load(0x400, addr(100), 0.0).latency
        assert assisted_latency < plain_latency
        assert assisted.stats.ocp_correct == 1
        assert assisted.stats.ocp_predictions == 1

    def test_wrong_prediction_burns_bandwidth(self):
        h = make_hierarchy(ocp=AlwaysOffchipOcp())
        h.load(0x400, addr(100), 0.0)
        h.load(0x400, addr(100), 1000.0)  # L1 hit, but OCP fires anyway
        assert h.stats.dram_ocp_requests == 2
        assert h.stats.ocp_correct == 1

    def test_disabled_ocp_issues_nothing(self):
        h = make_hierarchy(ocp=AlwaysOffchipOcp())
        h.set_ocp_enabled(False)
        h.load(0x400, addr(100), 0.0)
        assert h.stats.dram_ocp_requests == 0

    def test_ocp_trained_with_outcome(self):
        ocp = AlwaysOffchipOcp()
        h = make_hierarchy(ocp=ocp)
        h.load(0x400, addr(100), 0.0)
        assert ocp.last_outcome is True
        h.load(0x400, addr(100), 1000.0)
        assert ocp.last_outcome is False

    def test_negative_predictor_never_requests(self):
        h = make_hierarchy(ocp=NeverOffchipOcp())
        h.load(0x400, addr(100), 0.0)
        assert h.stats.dram_ocp_requests == 0
        assert h.stats.ocp_predictions == 0

    def test_higher_issue_latency_slower(self):
        fast = CacheHierarchy(
            scaled_system().with_ocp_issue_latency(6), ocp=AlwaysOffchipOcp()
        )
        slow = CacheHierarchy(
            scaled_system().with_ocp_issue_latency(30), ocp=AlwaysOffchipOcp()
        )
        assert (
            fast.load(0x400, addr(100), 0.0).latency
            < slow.load(0x400, addr(100), 0.0).latency
        )


class TestPrefetchPath:
    def test_prefetch_fills_target_level(self):
        h = make_hierarchy(prefetchers=[NextLinePf()])
        h.load(0x400, addr(100), 0.0)
        assert h.l2c.probe(101)
        assert h.l2c.probe(102)
        assert h.stats.prefetches_issued == 2
        assert h.stats.dram_prefetch_requests == 2

    def test_l1_prefetcher_fills_l1(self):
        h = make_hierarchy(prefetchers=[L1NextLinePf()])
        h.load(0x400, addr(100), 0.0)
        assert h.l1d.probe(101)

    def test_useful_prefetch_credited_once(self):
        h = make_hierarchy(prefetchers=[NextLinePf()])
        h.load(0x400, addr(100), 0.0)
        h.load(0x400, addr(101), 1000.0)
        h.load(0x400, addr(101), 2000.0)
        assert h.stats.prefetches_useful == 1

    def test_disabled_prefetcher_is_silent(self):
        h = make_hierarchy(prefetchers=[NextLinePf()])
        h.set_prefetchers_enabled([False])
        h.load(0x400, addr(100), 0.0)
        assert h.stats.prefetches_issued == 0

    def test_enable_flags_length_checked(self):
        h = make_hierarchy(prefetchers=[NextLinePf()])
        with pytest.raises(ValueError):
            h.set_prefetchers_enabled([True, False])

    def test_prefetch_filter_drops_requests(self):
        h = make_hierarchy(prefetchers=[NextLinePf()])
        h.prefetch_filter = lambda pc, line, level: False
        h.load(0x400, addr(100), 0.0)
        assert h.stats.prefetches_issued == 0

    def test_resident_line_not_reprefetched(self):
        h = make_hierarchy(prefetchers=[NextLinePf()])
        h.load(0x400, addr(100), 0.0)
        issued = h.stats.prefetches_issued
        h.load(0x400, addr(100), 1000.0)  # 101/102 already resident
        assert h.stats.prefetches_issued == issued

    def test_pollution_tracked_on_prefetch_eviction(self):
        h = make_hierarchy(prefetchers=[NextLinePf()])
        sets = h.llc.num_sets
        victim = 7
        h.load(0x400, addr(victim), 0.0)
        h.l1d.invalidate(victim)
        h.l2c.invalidate(victim)
        # Flood the victim's LLC set with prefetch fills until evicted.
        t = 100.0
        k = 1
        while h.llc.probe(victim) and k < 32:
            h.load(0x500, addr(victim + sets * k * 4 + 1024 * 512), t)
            t += 200.0
            k += 1
        if not h.llc.probe(victim):
            result = h.load(0x400, addr(victim), t + 1000.0)
            assert result.went_offchip

    def test_degree_fraction_scales_candidates(self):
        pf = NextLinePf()
        h = make_hierarchy(prefetchers=[pf])
        h.set_degree_fraction(0.5)
        h.load(0x400, addr(100), 0.0)
        assert h.stats.prefetches_issued == 1  # degree 2 -> 1


class TestObservers:
    def test_observer_sees_prefetch_and_demand_events(self):
        events = []

        class Spy:
            def on_prefetch_issued(self, line):
                events.append(("pf", line))

            def on_demand_load(self, pc, line, offchip):
                events.append(("ld", line, offchip))

        h = make_hierarchy(prefetchers=[NextLinePf()])
        h.observers.append(Spy())
        h.load(0x400, addr(100), 0.0)
        kinds = {e[0] for e in events}
        assert kinds == {"pf", "ld"}

    def test_observer_missing_methods_ignored(self):
        class Empty:
            pass

        h = make_hierarchy()
        h.observers.append(Empty())
        h.load(0x400, addr(100), 0.0)  # must not raise
