"""Bloom filter used by Athena's state-measurement hardware (paper §5.2).

Athena uses two 4096-bit Bloom filters with two hash functions each: one to
track prefetcher accuracy (§5.2.1) and one to track prefetch-induced cache
pollution at the LLC (§5.2.3).  Both are reset at the end of every epoch.

The implementation is a plain bit-vector Bloom filter with ``k``
multiplicative hashes, sized exactly as the paper's hardware (Table 4).
"""

from __future__ import annotations

# Large odd multipliers (derived from the golden ratio and friends) used to
# decorrelate the k hash functions; any fixed odd constants work.
_HASH_MULTIPLIERS = (
    0x9E3779B97F4A7C15,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
    0x27D4EB2F165667C5,
    0x85EBCA77C2B2AE63,
    0xFF51AFD7ED558CCD,
)

_MASK64 = (1 << 64) - 1


def _mix(value: int, multiplier: int) -> int:
    """64-bit multiplicative hash with avalanche finalisation."""
    h = (value * multiplier) & _MASK64
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) & _MASK64
    h ^= h >> 29
    return h


class BloomFilter:
    """Fixed-size Bloom filter with ``num_hashes`` independent hashes."""

    def __init__(self, num_bits: int = 4096, num_hashes: int = 2) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if not 1 <= num_hashes <= len(_HASH_MULTIPLIERS):
            raise ValueError(
                f"num_hashes must be in [1, {len(_HASH_MULTIPLIERS)}]"
            )
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        # One byte per bit: index arithmetic beats big-int shifting for the
        # per-access query/insert pattern of the Athena trackers.
        self._bits = bytearray(num_bits)
        self._count = 0
        self._two_hashes = num_hashes == 2

    def _indices(self, key: int):
        for m in _HASH_MULTIPLIERS[: self.num_hashes]:
            yield _mix(key, m) % self.num_bits

    def insert(self, key: int) -> None:
        bits = self._bits
        if self._two_hashes:
            n = self.num_bits
            h = (key * 0x9E3779B97F4A7C15) & _MASK64
            h ^= h >> 33
            h = (h * 0xFF51AFD7ED558CCD) & _MASK64
            bits[(h ^ (h >> 29)) % n] = 1
            h = (key * 0xC2B2AE3D27D4EB4F) & _MASK64
            h ^= h >> 33
            h = (h * 0xFF51AFD7ED558CCD) & _MASK64
            bits[(h ^ (h >> 29)) % n] = 1
        else:
            for idx in self._indices(key):
                bits[idx] = 1
        self._count += 1

    def query(self, key: int) -> bool:
        """True if ``key`` may have been inserted (no false negatives)."""
        bits = self._bits
        if self._two_hashes:
            n = self.num_bits
            h = (key * 0x9E3779B97F4A7C15) & _MASK64
            h ^= h >> 33
            h = (h * 0xFF51AFD7ED558CCD) & _MASK64
            if not bits[(h ^ (h >> 29)) % n]:
                return False
            h = (key * 0xC2B2AE3D27D4EB4F) & _MASK64
            h ^= h >> 33
            h = (h * 0xFF51AFD7ED558CCD) & _MASK64
            return bool(bits[(h ^ (h >> 29)) % n])
        for idx in self._indices(key):
            if not bits[idx]:
                return False
        return True

    def __contains__(self, key: int) -> bool:
        return self.query(key)

    def reset(self) -> None:
        """Clear all bits; called at the end of every Athena epoch."""
        self._bits = bytearray(self.num_bits)
        self._count = 0

    @property
    def approximate_count(self) -> int:
        """Number of insert() calls since the last reset."""
        return self._count

    def saturation(self) -> float:
        """Fraction of bits currently set (diagnostic for sizing)."""
        return sum(self._bits) / self.num_bits

    def false_positive_rate(self) -> float:
        """Theoretical FPR for the current insert count."""
        if self._count == 0:
            return 0.0
        k, m, n = self.num_hashes, self.num_bits, self._count
        return (1.0 - (1.0 - 1.0 / m) ** (k * n)) ** k

    def storage_bits(self) -> int:
        return self.num_bits
