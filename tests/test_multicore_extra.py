"""Extra multi-core tests: warm-up semantics and shared-resource effects."""

import pytest

from repro.experiments.configs import CacheDesign, build_hierarchy, system_for
from repro.policies.athena import AthenaPolicy
from repro.policies.base import NaivePolicy
from repro.sim.multicore import MultiCoreSimulator
from repro.workloads.suites import build_trace, find_workload


def make_sim(workloads, policy_factory=lambda: None, *, cores=None,
             length=4_000, epoch=400, warmup=0.0, bandwidth=3.2):
    design = CacheDesign.cd1(bandwidth_gbps=bandwidth)
    params = system_for(design)
    traces = [build_trace(find_workload(w), length) for w in workloads]
    return MultiCoreSimulator(
        traces=traces,
        params=params,
        hierarchy_factory=lambda p, llc, dram: build_hierarchy(
            design, params=p, llc=llc, dram=dram
        ),
        policy_factory=policy_factory,
        instructions_per_core=length,
        epoch_length=epoch,
        warmup_fraction=warmup,
    )


STREAM = "spec06.libquantum_like.0"
CHASE = "ligra.BFS.0"


class TestWarmupSemantics:
    def test_warmup_shrinks_measured_instructions(self):
        full = make_sim([STREAM, CHASE]).run()
        warmed = make_sim([STREAM, CHASE], warmup=0.25).run()
        for f, w in zip(full.cores, warmed.cores):
            assert w.instructions == f.instructions - 1_000

    def test_warmup_fraction_validated(self):
        with pytest.raises(ValueError, match="warmup_fraction"):
            make_sim([STREAM], warmup=1.5)

    def test_measured_cycles_exclude_warmup(self):
        full = make_sim([STREAM, CHASE]).run()
        warmed = make_sim([STREAM, CHASE], warmup=0.25).run()
        for f, w in zip(full.cores, warmed.cores):
            assert 0 < w.cycles < f.cycles

    def test_zero_warmup_unchanged(self):
        a = make_sim([STREAM]).run()
        b = make_sim([STREAM], warmup=0.0).run()
        assert a.cores[0].cycles == b.cores[0].cycles


class TestSharedResourceContention:
    def test_corunner_slows_memory_workload(self):
        """A bandwidth-hungry co-runner must hurt a memory workload more
        than running alone (shared DRAM contention)."""
        alone = make_sim([CHASE]).run().cores[0]
        contended = make_sim([CHASE, STREAM, STREAM, STREAM]).run().cores[0]
        assert contended.ipc < alone.ipc

    def test_more_bandwidth_relieves_contention(self):
        slow = make_sim([CHASE, STREAM], bandwidth=1.6).run()
        fast = make_sim([CHASE, STREAM], bandwidth=12.8).run()
        assert fast.cores[0].ipc > slow.cores[0].ipc
        assert fast.cores[1].ipc > slow.cores[1].ipc

    def test_per_core_policies_are_independent(self):
        sim = make_sim([STREAM, CHASE], policy_factory=AthenaPolicy)
        policies = [ctx.policy for ctx in sim.contexts]
        assert policies[0] is not policies[1]
        sim.run()
        # Each agent learned from its own core's telemetry.
        assert policies[0].agent.decisions
        assert policies[1].agent.decisions

    def test_weighted_speedup_identity(self):
        run = make_sim([STREAM, CHASE]).run()
        assert run.weighted_speedup(run) == pytest.approx(1.0)

    def test_weighted_speedup_core_count_mismatch(self):
        a = make_sim([STREAM]).run()
        b = make_sim([STREAM, CHASE]).run()
        with pytest.raises(ValueError, match="core count"):
            a.weighted_speedup(b)


class TestTraceReplay:
    def test_short_trace_replays_to_limit(self):
        """Paper §6.1: workloads replay until every core retires its
        instruction quota."""
        design = CacheDesign.cd1()
        params = system_for(design)
        short = build_trace(find_workload(STREAM), 1_000)
        sim = MultiCoreSimulator(
            traces=[short],
            params=params,
            hierarchy_factory=lambda p, llc, dram: build_hierarchy(
                design, params=p, llc=llc, dram=dram
            ),
            policy_factory=NaivePolicy,
            instructions_per_core=3_000,
            epoch_length=400,
        )
        result = sim.run()
        assert result.cores[0].instructions == 3_000
