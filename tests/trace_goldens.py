"""Shared definition of the golden trace-equivalence suite and its recorder.

``tests/golden/trace_hashes.json`` pins a sha256 digest of the exact
``pcs``/``addrs``/``flags`` arrays for every registered workload spec
(evaluation + tuning + google) at two trace lengths.  The digests were
recorded from the original one-instruction-at-a-time generator loops;
``tests/test_trace_equivalence.py`` rebuilds every trace through the
current (vectorized) generators and asserts digest equality, so a single
differing byte in any array of any workload fails loudly.

The two lengths are deliberately unequal and non-round: emitters truncate
and pad at their budget boundary, so tail behaviour differs per length
and both tails are pinned.

Regenerate (only when generator behaviour changes *deliberately*)::

    PYTHONPATH=src:tests python -m trace_goldens
"""

from __future__ import annotations

import hashlib
import json
import pathlib

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "trace_hashes.json"

#: two lengths per spec: a short one and a longer non-round one, so the
#: budget-boundary truncation/padding paths are pinned at both.
LENGTHS = (2_500, 6_337)


def all_specs():
    from repro.workloads.suites import (
        evaluation_workloads,
        extended_workloads,
        google_workloads,
        tuning_workloads,
    )

    return (evaluation_workloads() + tuning_workloads()
            + google_workloads() + extended_workloads())


def trace_digest(trace) -> str:
    """sha256 over the raw bytes of the three parallel arrays."""
    h = hashlib.sha256()
    h.update(trace.pcs.tobytes())
    h.update(trace.addrs.tobytes())
    h.update(trace.flags.tobytes())
    return h.hexdigest()


def case_key(spec, length: int) -> str:
    return f"{spec.name}@{length}"


def record_all() -> None:
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    digests = {}
    for spec in all_specs():
        for length in LENGTHS:
            digests[case_key(spec, length)] = trace_digest(spec.build(length))
    GOLDEN_PATH.write_text(json.dumps(digests, indent=1, sort_keys=True) + "\n")
    print(f"recorded {len(digests)} digests to {GOLDEN_PATH}")


if __name__ == "__main__":
    record_all()
