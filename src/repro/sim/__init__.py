"""Trace-driven timing simulator substrate (ChampSim analogue)."""

from .cache import Cache
from .cpu import CoreModel
from .dram import MainMemory
from .hierarchy import CacheHierarchy
from .params import (
    CacheParams,
    CoreParams,
    DramParams,
    SystemParams,
    default_system,
    scaled_system,
)
from .simulator import SimulationResult, Simulator
from .stats import EpochTelemetry, SimStats

__all__ = [
    "Cache",
    "CacheHierarchy",
    "CacheParams",
    "CoreModel",
    "CoreParams",
    "DramParams",
    "EpochTelemetry",
    "MainMemory",
    "SimStats",
    "SimulationResult",
    "Simulator",
    "SystemParams",
    "default_system",
    "scaled_system",
]
