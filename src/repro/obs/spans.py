"""Nested wall/CPU-timed spans with a process-local collector.

A *span* times one named phase of work — ``trace_build``, ``simulate``,
``store_write`` — and records where it ran (worker id) and where it sat
in the phase nesting (``path``, slash-joined from the enclosing spans).
Finished spans are plain dicts: they must cross the worker process
boundary on result payloads and land verbatim in the JSONL run journal,
so there is nothing to encode or decode.

The process holds one :class:`SpanCollector`
(:func:`collector`); engine workers accumulate spans there during a
request, ship them back to the parent on the result payload (exactly the
mechanism the trace-cache delta established), and the parent merges them
into *its* collector — so after a parallel batch the parent's collector
holds every span of the campaign exactly once.

Telemetry is off by default and the disabled path is one attribute
check: ``with span("simulate"):`` yields immediately without reading a
clock, so instrumented hot paths cost nothing when no journal is
active.  Enable explicitly (:func:`set_enabled`) or by exporting
``REPRO_TELEMETRY`` — worker processes receive the parent's enablement
as a submit-time argument, so spawn-based pools need no environment
plumbing.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional

__all__ = [
    "SpanCollector",
    "collector",
    "reset_collector",
    "set_enabled",
    "span",
    "spans_enabled",
    "worker_id",
]


def worker_id() -> str:
    """This process's span/journal worker identity (``pid<N>``)."""
    return f"pid{os.getpid()}"


class SpanCollector:
    """Ordered list of finished spans plus the live nesting stack.

    ``enabled`` defaults to whether ``REPRO_TELEMETRY`` is set; when
    False, :meth:`span` is a no-op context manager.  The nesting stack
    is thread-local (concurrent threads time independent phases); the
    finished-span list is shared and lock-protected.
    """

    def __init__(self, enabled: Optional[bool] = None) -> None:
        if enabled is None:
            enabled = bool(os.environ.get("REPRO_TELEMETRY"))
        self.enabled = enabled
        self._spans: List[Dict] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- recording ----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs):
        """Time a phase; yields the (mutable) span dict, or ``None``.

        The yielded dict gains ``wall_s``/``cpu_s``/``start_s`` on exit
        and is appended to the collector — including when the body
        raises, so a failed phase still shows up in the accounting.
        """
        if not self.enabled:
            yield None
            return
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(name)
        record: Dict = {
            "name": name,
            "path": "/".join(stack),
            "worker": worker_id(),
            **attrs,
        }
        start = time.time()
        cpu0 = time.process_time()
        wall0 = time.perf_counter()
        try:
            yield record
        finally:
            record["wall_s"] = time.perf_counter() - wall0
            record["cpu_s"] = time.process_time() - cpu0
            record["start_s"] = start
            stack.pop()
            with self._lock:
                self._spans.append(record)

    def merge(self, spans: Iterable[Dict]) -> None:
        """Fold externally produced spans in (worker payload deltas)."""
        spans = list(spans)
        if spans:
            with self._lock:
                self._spans.extend(spans)

    # -- reading ------------------------------------------------------------

    @property
    def spans(self) -> List[Dict]:
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def take_since(self, mark: int) -> List[Dict]:
        """Remove and return every span recorded after position ``mark``.

        Workers use this to ship exactly one request's spans on the
        result payload without disturbing anything recorded earlier
        (e.g. parent spans inherited across a ``fork``).
        """
        with self._lock:
            taken = self._spans[mark:]
            del self._spans[mark:]
            return taken

    def drain(self) -> List[Dict]:
        """Remove and return every finished span."""
        return self.take_since(0)


_COLLECTOR: Optional[SpanCollector] = None
_COLLECTOR_LOCK = threading.Lock()


def collector() -> SpanCollector:
    """The process-wide collector (created lazily from the environment)."""
    global _COLLECTOR
    if _COLLECTOR is None:
        with _COLLECTOR_LOCK:
            if _COLLECTOR is None:
                _COLLECTOR = SpanCollector()
    return _COLLECTOR


def reset_collector(
    new: Optional[SpanCollector] = None,
) -> SpanCollector:
    """Replace the process-wide collector (tests; env-var changes)."""
    global _COLLECTOR
    with _COLLECTOR_LOCK:
        _COLLECTOR = new if new is not None else SpanCollector()
    return _COLLECTOR


def spans_enabled() -> bool:
    return collector().enabled


def set_enabled(flag: bool) -> None:
    collector().enabled = bool(flag)


def span(name: str, **attrs):
    """Record one span on the process-wide collector (context manager)."""
    return collector().span(name, **attrs)
