"""Tidy result objects returned by the Session API.

Every result exposes the same export surface — ``to_rows()`` (list of
flat dicts, one per observation), ``to_json()``, ``to_csv()`` — so
downstream consumers (pandas, spreadsheets, dashboards) ingest any
result kind identically, and a whole :class:`ExperimentResult`
concatenates its sections into one long table.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..experiments.figures import FigureResult


class ResultExportMixin:
    """Shared ``to_rows``-derived exports."""

    def to_rows(self) -> List[Dict[str, object]]:  # pragma: no cover
        raise NotImplementedError

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_rows(), indent=indent)

    def to_csv(self) -> str:
        rows = self.to_rows()
        columns: List[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
        return buffer.getvalue()


@dataclass
class RunResult(ResultExportMixin):
    """One resolved :class:`~repro.api.spec.RunSpec`.

    ``ipc`` is the policy run's IPC (geomean across agent seeds for
    athena), ``speedup`` its ratio over the matching no-mechanism
    baseline — the paper's per-workload metric.  ``results`` holds the
    full :class:`~repro.sim.simulator.SimulationResult` objects
    (baseline first) for epoch-level inspection; ``cached`` is True when
    every underlying request came from the memo/store.

    A spec whose execution failed after retries still produces a
    result: ``status="error"``, ``error`` holds the failure summary,
    and the numeric fields are ``None`` — streaming consumers see every
    spec settle exactly once.
    """

    spec: object
    workload: str
    design: str
    policy: str
    ipc: Optional[float]
    baseline_ipc: Optional[float]
    speedup: Optional[float]
    keys: List[str] = field(default_factory=list)
    results: List[object] = field(default_factory=list)
    cached: bool = False
    status: str = "ok"
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def result(self):
        """The representative policy run (first agent seed)."""
        return self.results[1] if len(self.results) > 1 else self.results[0]

    @property
    def baseline_result(self):
        return self.results[0]

    def to_rows(self) -> List[Dict[str, object]]:
        # include the full spec identity (variant, params, overrides):
        # two runs differing only in alpha or variant must stay
        # distinguishable in a groupby over the exported rows
        row: Dict[str, object] = {
            "workload": self.workload,
            "design": self.design,
            "policy": self.policy,
            "variant": getattr(self.spec, "variant", "full"),
            "design_params": json.dumps(
                getattr(self.spec, "design_params", {}) or {},
                sort_keys=True),
            "policy_params": json.dumps(
                getattr(self.spec, "policy_params", {}) or {},
                sort_keys=True),
            "ipc": self.ipc,
            "baseline_ipc": self.baseline_ipc,
            "speedup": self.speedup,
            "status": self.status,
        }
        if self.error is not None:
            row["error"] = self.error
        for key in ("trace_length", "epoch_length", "warmup_fraction"):
            value = getattr(self.spec, key, None)
            if value is not None:
                row[key] = value
        return [row]


@dataclass
class MixResult(ResultExportMixin):
    """One resolved :class:`~repro.api.spec.MixSpec` (per-core rows).

    A failed mix has ``status="error"``, ``result=None``, and exports a
    single row carrying the error instead of per-core observations.
    """

    spec: object
    name: str
    design: str
    policy: str
    key: str
    result: object  # MultiCoreResult (None when status != "ok")
    cached: bool = False
    status: str = "ok"
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_rows(self) -> List[Dict[str, object]]:
        if self.result is None:
            return [{
                "mix": self.name,
                "design": self.design,
                "policy": self.policy,
                "status": self.status,
                "error": self.error,
            }]
        return [
            {
                "mix": self.name,
                "core": index,
                "workload": core.workload,
                "design": self.design,
                "policy": self.policy,
                "ipc": core.ipc,
                "instructions": core.instructions,
                "cycles": core.cycles,
                "status": self.status,
            }
            for index, core in enumerate(self.result.cores)
        ]


@dataclass
class SweepResult(ResultExportMixin):
    """One resolved sweep: the speedup matrix plus its table view."""

    spec: object
    table: FigureResult

    def format_table(self) -> str:
        return self.table.format_table()

    def to_rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for label, values in self.table.rows:
            if label == "geomean":
                # synthetic aggregate: shown by format_table(), but one
                # row per *observation* here so downstream groupbys
                # don't double-count it
                continue
            for column, speedup in values.items():
                design, _, policy = column.partition("/")
                rows.append({
                    "workload": label,
                    "design": design,
                    "policy": policy,
                    "speedup": speedup,
                })
        return rows


@dataclass
class FigureOutcome(ResultExportMixin):
    """One regenerated figure, wrapped with the tidy export surface."""

    figure_id: str
    table: FigureResult

    def format_table(self) -> str:
        return self.table.format_table()

    def to_rows(self) -> List[Dict[str, object]]:
        return [
            {"figure": self.figure_id, "row": label, **values}
            for label, values in self.table.rows
        ]


@dataclass
class ExperimentResult(ResultExportMixin):
    """Everything one :class:`~repro.api.spec.ExperimentSpec` produced."""

    name: str
    sections: List[Tuple[str, ResultExportMixin]] = field(
        default_factory=list)

    def add(self, kind: str, result: ResultExportMixin) -> None:
        self.sections.append((kind, result))

    def of_kind(self, kind: str) -> List[ResultExportMixin]:
        return [result for k, result in self.sections if k == kind]

    def to_rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for kind, result in self.sections:
            for row in result.to_rows():
                rows.append({"section": kind, **row})
        return rows

    def format_text(self) -> str:
        """Human-readable report: every tabular section in order."""
        blocks: List[str] = []
        for kind, result in self.sections:
            if hasattr(result, "format_table"):
                blocks.append(result.format_table())
            elif isinstance(result, RunResult):
                if not result.ok:
                    blocks.append(
                        f"run {result.workload} "
                        f"[{result.design}/{result.policy}]: "
                        f"FAILED — {result.error}"
                    )
                    continue
                blocks.append(
                    f"run {result.workload} [{result.design}/{result.policy}]"
                    f": ipc={result.ipc:.4f} "
                    f"baseline={result.baseline_ipc:.4f} "
                    f"speedup={result.speedup:.4f}"
                )
            elif isinstance(result, MixResult):
                if not result.ok:
                    blocks.append(
                        f"mix {result.name} "
                        f"[{result.design}/{result.policy}]: "
                        f"FAILED — {result.error}"
                    )
                    continue
                lines = [f"mix {result.name} "
                         f"[{result.design}/{result.policy}]:"]
                for row in result.to_rows():
                    lines.append(
                        f"  core{row['core']} {row['workload']:<28} "
                        f"ipc={row['ipc']:.4f}"
                    )
                blocks.append("\n".join(lines))
        return "\n\n".join(blocks)


def attach_sweep_table(
    spec,
    workload_names: Sequence[str],
    columns: Sequence[Tuple[str, str, str]],
    cells: Dict[Tuple[str, str], float],
    geomeans: Dict[str, float],
) -> SweepResult:
    """Assemble the sweep's FigureResult exactly as ``repro sweep`` prints.

    ``cells`` maps (workload, column-label) → speedup.
    """
    table = FigureResult(
        "Sweep",
        f"speedup over no-prefetching baseline "
        f"({len(workload_names)} workloads)",
    )
    for name in workload_names:
        table.add(name, **{
            label: cells[(name, label)] for label, _, _ in columns
        })
    table.add("geomean", **dict(geomeans))
    return SweepResult(spec=spec, table=table)
