"""QVStore — Athena's partitioned, multi-hash Q-value storage (paper §5.1).

The QVStore holds Q-values for every observed state-action pair without
materialising the full combinatorial state space.  It is organised as
``k`` independent *planes*; each plane is a small table (rows x actions)
indexed by a distinct hash of the state vector.  The Q-value of a pair is
the **sum of the partial Q-values** across planes; SARSA updates are
applied independently to each plane (each plane absorbs ``delta / k``).

This is the tile-coding/hashed-ensemble trick: similar states collide in
some planes (sharing value, generalising), while dissimilar states are
de-aliased by the independent hashes.

The default geometry matches Table 4: 8 planes x 64 rows x 4 actions with
8-bit entries (2 KB).  Entries here are floats clipped to ``[-clip, clip]``;
:meth:`storage_bits` audits the hardware budget at the configured
``q_value_bits`` precision.
"""

from __future__ import annotations

from typing import List, Sequence

_MASK64 = (1 << 64) - 1

_PLANE_MULTIPLIERS = (
    0x9E3779B97F4A7C15,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
    0x27D4EB2F165667C5,
    0x85EBCA77C2B2AE63,
    0xFF51AFD7ED558CCD,
    0xD6E8FEB86659FD93,
    0xA3AAAC68DCE9A41B,
    0xCB9E59DCAAD4F2E7,
    0xE7037ED1A0B428DB,
    0x8EBC6AF09C88C6E3,
    0x589965CC75374CC3,
)


def _plane_hash(state: int, multiplier: int, rows: int) -> int:
    h = (state * multiplier) & _MASK64
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) & _MASK64
    h ^= h >> 29
    return h % rows


class QVStore:
    """Partitioned Q-value storage with ``num_planes`` hashed planes."""

    def __init__(
        self,
        num_actions: int,
        num_planes: int = 8,
        rows_per_plane: int = 64,
        q_init: float = 0.0,
        q_clip: float = 4.0,
        q_value_bits: int = 8,
    ) -> None:
        if num_actions <= 0:
            raise ValueError("num_actions must be positive")
        if not 1 <= num_planes <= len(_PLANE_MULTIPLIERS):
            raise ValueError(
                f"num_planes must be in [1, {len(_PLANE_MULTIPLIERS)}]"
            )
        if rows_per_plane <= 0:
            raise ValueError("rows_per_plane must be positive")
        self.num_actions = num_actions
        self.num_planes = num_planes
        self.rows_per_plane = rows_per_plane
        self.q_clip = q_clip
        self.q_value_bits = q_value_bits
        init_share = q_init / num_planes
        self._planes: List[List[List[float]]] = [
            [[init_share] * num_actions for _ in range(rows_per_plane)]
            for _ in range(num_planes)
        ]
        self._multipliers = _PLANE_MULTIPLIERS[:num_planes]

    # -- retrieval (paper Figure 6, three stages) ---------------------------

    def _per_plane_states(self, state) -> List[int]:
        """Accept either one state vector or one pre-tiled state per plane."""
        if isinstance(state, int):
            return [state] * self.num_planes
        states = list(state)
        if len(states) != self.num_planes:
            raise ValueError(
                f"expected {self.num_planes} per-plane states, got {len(states)}"
            )
        return states

    def rows_for_state(self, state) -> List[int]:
        """Stage 2: the k per-plane row indices for a state vector."""
        return [
            _plane_hash(s, m, self.rows_per_plane)
            for s, m in zip(self._per_plane_states(state), self._multipliers)
        ]

    def q_value(self, state, action: int) -> float:
        """Stage 3: sum of partial Q-values across all planes."""
        self._check_action(action)
        total = 0.0
        for plane, s, m in zip(
            self._planes, self._per_plane_states(state), self._multipliers
        ):
            total += plane[_plane_hash(s, m, self.rows_per_plane)][action]
        return total

    def q_values(self, state) -> List[float]:
        """All actions' Q-values for one state (single pass over planes)."""
        totals = [0.0] * self.num_actions
        for plane, s, m in zip(
            self._planes, self._per_plane_states(state), self._multipliers
        ):
            row = plane[_plane_hash(s, m, self.rows_per_plane)]
            for a in range(self.num_actions):
                totals[a] += row[a]
        return totals

    def best_action(self, state) -> int:
        q = self.q_values(state)
        best = 0
        for a in range(1, self.num_actions):
            if q[a] > q[best]:
                best = a
        return best

    # -- update ---------------------------------------------------------------

    def update(self, state, action: int, delta: float) -> None:
        """Distribute a SARSA delta equally across the planes.

        Each plane absorbs ``delta / k``, so the summed Q-value moves by
        exactly ``delta`` (up to clipping at the plane level, which models
        the fixed-point saturation of 8-bit hardware entries).
        """
        self._check_action(action)
        share = delta / self.num_planes
        clip = self.q_clip / self.num_planes
        for plane, s, m in zip(
            self._planes, self._per_plane_states(state), self._multipliers
        ):
            row = plane[_plane_hash(s, m, self.rows_per_plane)]
            row[action] = max(-clip, min(clip, row[action] + share))

    def _check_action(self, action: int) -> None:
        if not 0 <= action < self.num_actions:
            raise IndexError(
                f"action {action} out of range [0, {self.num_actions})"
            )

    # -- accounting --------------------------------------------------------------

    def storage_bits(self) -> int:
        return (
            self.num_planes
            * self.rows_per_plane
            * self.num_actions
            * self.q_value_bits
        )

    def storage_kib(self) -> float:
        return self.storage_bits() / 8192.0

    def plane_snapshot(self, plane_index: int) -> Sequence[Sequence[float]]:
        """Read-only view of one plane (diagnostics and tests)."""
        return tuple(tuple(row) for row in self._planes[plane_index])
