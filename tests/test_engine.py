"""Tests for the parallel experiment engine and its result store."""

import json

import pytest

from repro.core.config import AthenaConfig
from repro.engine import (
    Engine,
    MixRequest,
    ResultStore,
    RunRequest,
    run_many,
)
from repro.engine.jobs import decode_result, encode_result
from repro.engine.store import StoreDecodeError
from repro.experiments.configs import CacheDesign
from repro.experiments.figures import fig02_naive_vs_staticbest
from repro.experiments.runner import ExperimentContext
from repro.workloads.mixes import build_mixes
from repro.workloads.suites import ReproScale, find_workload

TINY = ReproScale("test", trace_length=3000, workloads_per_figure=4,
                  epoch_length=150, policy_seeds=1)


def _request(policy="naive", workload="ligra.BFS.0", **overrides):
    defaults = dict(
        spec=find_workload(workload),
        trace_length=3000,
        design=CacheDesign.cd1(),
        policy_name=policy,
        epoch_length=150,
        warmup_fraction=0.35,
    )
    defaults.update(overrides)
    return RunRequest(**defaults)


class TestRunRequestKeys:
    def test_key_is_stable(self):
        assert _request().key() == _request().key()

    def test_key_distinguishes_parameters(self):
        base = _request()
        variants = [
            _request(policy="mab"),
            _request(workload="ligra.PageRank.1"),
            _request(trace_length=6000),
            _request(design=CacheDesign.cd2()),
            _request(epoch_length=300),
            _request(warmup_fraction=0.2),
            _request(policy="athena"),
            _request(policy="athena",
                     athena_config=AthenaConfig(seed=1)),
        ]
        keys = {base.key()} | {v.key() for v in variants}
        assert len(keys) == len(variants) + 1

    def test_design_name_is_cosmetic(self):
        from dataclasses import replace

        d = CacheDesign.cd1()
        renamed = replace(d, name="CD1-some-other-label")
        assert _request(design=d).key() == _request(design=renamed).key()

    def test_athena_default_config_is_canonical(self):
        explicit = _request(policy="athena",
                            athena_config=AthenaConfig())
        implicit = _request(policy="athena")
        assert explicit.key() == implicit.key()


class TestResultCodec:
    def test_simulation_result_roundtrip(self):
        request = _request(policy="athena")
        result = request.execute()
        clone = decode_result(
            json.loads(json.dumps(encode_result(result)))
        )
        assert clone.workload == result.workload
        assert clone.ipc == result.ipc
        assert clone.instructions == result.instructions
        assert clone.cycles == result.cycles
        assert clone.stats == result.stats
        assert clone.epochs == result.epochs
        assert clone.actions == result.actions
        assert clone.action_distribution() == result.action_distribution()

    def test_mix_result_roundtrip(self):
        mix = build_mixes(2, 1)[0]
        request = MixRequest(
            workloads=tuple(mix.workloads),
            trace_length=1500,
            design=CacheDesign.cd1(),
            policy_name="naive",
            epoch_length=150,
        )
        result = request.execute()
        clone = decode_result(
            json.loads(json.dumps(encode_result(result)))
        )
        assert [c.workload for c in clone.cores] == \
            [c.workload for c in result.cores]
        assert [c.ipc for c in clone.cores] == \
            [c.ipc for c in result.cores]
        baseline = request.execute()
        assert clone.weighted_speedup(baseline) == \
            result.weighted_speedup(baseline)

    def test_decode_rejects_garbage(self):
        with pytest.raises(StoreDecodeError):
            decode_result({"kind": "run"})
        with pytest.raises(StoreDecodeError):
            decode_result({"schema": -1, "kind": "run"})


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        store.put("k", {"a": 1})
        assert store.get("k") == {"a": 1}
        assert "k" in store
        assert len(store) == 1
        store.delete("k")
        assert store.get("k") is None

    def test_unparseable_payload_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        store._conn.execute(
            "INSERT INTO results VALUES ('bad', '{truncated', 0.0)"
        )
        store._conn.commit()
        assert store.get("bad") is None
        assert len(store) == 0  # the corrupt row was evicted

    def test_corrupt_database_file_is_recreated(self, tmp_path):
        path = tmp_path / "s.sqlite"
        # A truncated store: right header, garbage body.
        path.write_bytes(b"SQLite format 3\x00" + b"\xde\xad\xbe\xef" * 8)
        store = ResultStore(path)
        store.put("k", {"a": 1})
        assert store.get("k") == {"a": 1}

    def test_refuses_to_overwrite_foreign_file(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("important notes that are not a sqlite database")
        with pytest.raises(ValueError, match="refusing to overwrite"):
            ResultStore(path)
        assert path.read_text().startswith("important notes")

    def test_two_connections_share_entries(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with ResultStore(path) as writer, ResultStore(path) as reader:
            writer.put("k", {"a": 1})
            assert reader.get("k") == {"a": 1}


class TestEngine:
    def test_memo_store_execute_tiers(self, tmp_path):
        request = _request()
        with Engine(store=ResultStore(tmp_path / "s.sqlite")) as engine:
            first = engine.run(request)
            second = engine.run(request)
            assert second is first
            assert engine.counters.executed == 1
            assert engine.counters.memo_hits == 1
        with Engine(store=ResultStore(tmp_path / "s.sqlite")) as engine:
            replayed = engine.run(request)
            assert engine.counters.executed == 0
            assert engine.counters.store_hits == 1
            assert replayed.ipc == first.ipc
            assert replayed.stats == first.stats

    def test_corrupted_store_entry_is_recomputed(self, tmp_path):
        request = _request()
        store = ResultStore(tmp_path / "s.sqlite")
        with Engine(store=store) as engine:
            expected = engine.run(request)
            # Clobber the entry with a decodable-JSON but invalid payload.
            store.put(request.key(), {"schema": 999, "nonsense": True})
            engine2 = Engine(store=ResultStore(tmp_path / "s.sqlite"))
            recomputed = engine2.run(request)
            assert engine2.counters.executed == 1
            assert recomputed.ipc == expected.ipc

    def test_run_many_preserves_order_and_dedups(self):
        requests = [_request(), _request(policy="mab"), _request()]
        engine = Engine()
        results = engine.run_many(requests)
        assert engine.counters.executed == 2
        assert results[0] is results[2]
        assert results[0].ipc != results[1].ipc

    def test_run_many_parallel_matches_serial(self, tmp_path):
        requests = [
            _request(),
            _request(policy="mab"),
            _request(policy="athena"),
            _request(workload="spec06.mcf_like.0"),
        ]
        serial = Engine().run_many(requests)
        with Engine(store=ResultStore(tmp_path / "s.sqlite"),
                    jobs=2) as engine:
            parallel = engine.run_many(requests)
            assert engine.counters.executed == len(requests)
        for s, p in zip(serial, parallel):
            assert s.ipc == p.ipc
            assert s.stats == p.stats
            assert s.actions == p.actions

    def test_module_level_run_many(self):
        results = run_many([_request()], jobs=1)
        assert results[0].instructions > 0

    def test_progress_callback_streams(self):
        seen = []
        engine = Engine()
        engine.run_many(
            [_request(), _request(policy="mab")],
            progress=lambda done, total, key: seen.append((done, total)),
        )
        assert seen == [(1, 2), (2, 2)]


class TestFigureParallelism:
    """The acceptance property: parallel == serial, warm == zero runs."""

    def test_figure_parallel_bit_identical_and_warm(self, tmp_path):
        store_path = tmp_path / "s.sqlite"
        serial = fig02_naive_vs_staticbest(
            ExperimentContext(TINY)
        ).format_table()

        cold_engine = Engine(store=ResultStore(store_path), jobs=2)
        with cold_engine:
            cold = fig02_naive_vs_staticbest(
                ExperimentContext(TINY, engine=cold_engine)
            ).format_table()
            assert cold_engine.counters.executed > 0
        assert cold == serial

        warm_engine = Engine(store=ResultStore(store_path), jobs=2)
        with warm_engine:
            warm = fig02_naive_vs_staticbest(
                ExperimentContext(TINY, engine=warm_engine)
            ).format_table()
            assert warm_engine.counters.executed == 0
            assert warm_engine.counters.store_hits > 0
        assert warm == serial

    def test_multicore_mix_goes_through_engine(self, tmp_path):
        mix = build_mixes(2, 1)[0]
        design = CacheDesign.cd1()
        store_path = tmp_path / "s.sqlite"
        scale = ReproScale("test", trace_length=1500,
                           workloads_per_figure=2, epoch_length=150)
        with Engine(store=ResultStore(store_path)) as engine:
            ctx = ExperimentContext(scale, engine=engine)
            first = ctx.run_mix(mix, design, "naive")
            assert engine.counters.executed == 1
        with Engine(store=ResultStore(store_path)) as engine:
            ctx = ExperimentContext(scale, engine=engine)
            replayed = ctx.run_mix(mix, design, "naive")
            assert engine.counters.executed == 0
            assert [c.ipc for c in replayed.cores] == \
                [c.ipc for c in first.cores]


class TestMakePolicyKwargs:
    def test_unsupported_kwargs_raise(self):
        from repro.policies.registry import make_policy

        with pytest.raises(ValueError, match="unsupported"):
            make_policy("naive", seed=1)
        with pytest.raises(ValueError, match="unsupported"):
            make_policy("hpac", wibble=2)
        with pytest.raises(ValueError, match="accepts no options"):
            make_policy("none", seed=1)
        with pytest.raises(ValueError, match="unsupported athena"):
            make_policy("athena", wibble=2)

    def test_supported_kwargs_are_forwarded(self):
        from repro.policies.registry import make_policy

        athena = make_policy("athena", seed=7, alpha=0.4)
        assert athena.config.seed == 7
        assert athena.config.alpha == 0.4
        mab = make_policy("mab", discount=0.9)
        assert mab.discount == 0.9
