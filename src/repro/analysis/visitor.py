"""Shared AST infrastructure for the invariant linter.

Every lint rule sees a module through one :class:`ModuleIndex`: the
parsed tree plus the derived views rules keep needing —

* an import *alias map* so ``import numpy as np`` / ``from os import
  environ`` resolve back to canonical dotted names (``np.x`` →
  ``numpy.x``, ``environ`` → ``os.environ``),
* :meth:`resolve` / :meth:`resolve_call`, which turn an attribute chain
  or call target into that canonical dotted name,
* a bare-name index of every function/method definition and a local
  call graph over it (:meth:`reachable_functions`), the basis of the
  "nothing reachable from ``content_key`` may ..." style rules,
* per-line ``# repro: allow(<rule>[, <rule>...])`` suppressions
  (:meth:`is_suppressed`), honoured on the flagged line or on a
  standalone comment line directly above it.

The index is computed once per file and shared by every rule, so
adding a rule costs one more walk over an already-parsed tree, never a
re-parse.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

#: the suppression comment grammar: ``# repro: allow(rule-a, rule-b)``.
SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")


class ModuleIndex:
    """One parsed module plus the resolved views lint rules share."""

    def __init__(self, source: str, path: str,
                 rel_path: Optional[str] = None) -> None:
        self.source = source
        self.path = str(path)
        #: repo-relative path used for reporting and path-scoped rules.
        self.rel_path = (rel_path or str(path)).replace("\\", "/")
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=self.path)
        #: local name -> canonical dotted name, from every import form.
        self.aliases: Dict[str, str] = {}
        #: bare function/method name -> its definitions (module + class).
        self.functions: Dict[str, List[ast.AST]] = {}
        #: lineno -> rule ids allowed on that line.
        self.suppressions: Dict[int, Set[str]] = {}
        self._collect_imports()
        self._collect_functions()
        self._collect_suppressions()

    # -- construction -------------------------------------------------------

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        # ``import os.path`` binds the name ``os``.
                        head = alias.name.split(".", 1)[0]
                        self.aliases.setdefault(head, head)
            elif isinstance(node, ast.ImportFrom):
                # Relative imports keep their dotted tail ("..obs.spans"
                # → "obs.spans"): rules match on canonical suffixes, so
                # the package prefix is never load-bearing.
                module = node.module or ""
                for alias in node.names:
                    target = f"{module}.{alias.name}" if module \
                        else alias.name
                    self.aliases[alias.asname or alias.name] = target

    def _collect_functions(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions.setdefault(node.name, []).append(node)

    def _collect_suppressions(self) -> None:
        for lineno, line in enumerate(self.lines, start=1):
            match = SUPPRESS_RE.search(line)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")
                         if part.strip()}
                if rules:
                    self.suppressions[lineno] = rules

    # -- name resolution ----------------------------------------------------

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a ``Name``/``Attribute`` chain.

        ``np.random.seed`` resolves to ``numpy.random.seed`` under
        ``import numpy as np``; chains rooted in anything other than a
        plain name (a call result, a subscript) resolve to ``None``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.aliases.get(node.id, node.id))
        return ".".join(reversed(parts))

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        """Canonical dotted name of a call's target (or ``None``)."""
        return self.resolve(call.func)

    # -- suppressions -------------------------------------------------------

    def is_suppressed(self, lineno: int, rule_id: str) -> bool:
        """Whether ``rule_id`` is allowed at ``lineno``.

        A suppression counts on the flagged line itself, or on the line
        directly above when that line is a standalone comment.
        """
        rules = self.suppressions.get(lineno)
        if rules and (rule_id in rules or "*" in rules):
            return True
        rules = self.suppressions.get(lineno - 1)
        if rules and (rule_id in rules or "*" in rules):
            above = self.lines[lineno - 2].strip() \
                if 0 <= lineno - 2 < len(self.lines) else ""
            return above.startswith("#")
        return False

    # -- call graph ---------------------------------------------------------

    @staticmethod
    def call_target_name(call: ast.Call) -> Optional[str]:
        """The bare name a call targets (``f()`` → ``f``,
        ``self.f()``/``x.f()`` → ``f``), for local-call-graph edges."""
        func = call.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    def reachable_functions(self, seeds: Set[str]) -> Set[str]:
        """Bare names of local functions reachable from ``seeds``.

        Edges are intra-module and name-based: a call to ``f(...)`` or
        ``anything.f(...)`` reaches every local definition named ``f``.
        Deliberately an over-approximation — for invariants of the form
        "nothing reachable from ``content_key`` may read the
        environment", false edges only make the check stricter.
        """
        edges: Dict[str, Set[str]] = {}
        for name, defs in self.functions.items():
            targets: Set[str] = set()
            for fn in defs:
                for node in ast.walk(fn):
                    if isinstance(node, ast.Call):
                        callee = self.call_target_name(node)
                        if callee and callee in self.functions:
                            targets.add(callee)
            edges[name] = targets
        reached = {seed for seed in seeds if seed in self.functions}
        frontier = list(reached)
        while frontier:
            for callee in edges.get(frontier.pop(), ()):
                if callee not in reached:
                    reached.add(callee)
                    frontier.append(callee)
        return reached

    def function_bodies(self, names: Set[str]) -> Iterator[ast.AST]:
        """Every definition node for the given bare names."""
        for name in sorted(names):
            yield from self.functions.get(name, ())

    # -- context helpers ----------------------------------------------------

    def with_bound_names(self, method: str) -> List[Tuple[str, int, int]]:
        """Names bound by ``with <expr>.<method>(...) as <name>:`` blocks.

        Returns ``(name, first_line, last_line)`` triples — how the
        transaction-discipline rule blesses ``conn`` inside a
        ``with backend.transaction() as conn:`` body.
        """
        bound: List[Tuple[str, int, int]] = []
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                expr = item.context_expr
                if not (isinstance(expr, ast.Call)
                        and isinstance(expr.func, ast.Attribute)
                        and expr.func.attr == method):
                    continue
                if isinstance(item.optional_vars, ast.Name):
                    bound.append((item.optional_vars.id, node.lineno,
                                  node.end_lineno or node.lineno))
        return bound

    def matches_path(self, suffixes) -> bool:
        """Whether this module's relative path ends with any suffix."""
        return any(self.rel_path.endswith(suffix) for suffix in suffixes)
