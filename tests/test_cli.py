"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "athena" in out
        assert "pythia" in out
        assert "popet" in out
        assert "evaluation workloads (100)" in out
        assert "google" in out


class TestRun:
    def test_run_prints_speedup(self, capsys):
        assert main(["run", "ligra.BFS.0", "--policy", "naive",
                     "--length", "3000"]) == 0
        out = capsys.readouterr().out
        assert "speedup:" in out
        assert "ipc:" in out

    def test_run_unknown_workload(self):
        with pytest.raises(KeyError):
            main(["run", "no.such.workload", "--length", "3000"])

    def test_run_unknown_policy(self):
        with pytest.raises(ValueError):
            main(["run", "ligra.BFS.0", "--policy", "wat",
                  "--length", "3000"])


class TestFigure:
    def test_unknown_figure_exits_nonzero(self, capsys):
        assert main(["figure", "Fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown figure" in err

    def test_known_figure_runs(self, capsys, monkeypatch):
        # Run the cheapest driver at the tiny scale to keep the test fast.
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert main(["figure", "Fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig3" in out


class TestArgparse:
    def test_no_command_is_an_error(self):
        with pytest.raises(SystemExit):
            main([])

    def test_help_exits_zero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
