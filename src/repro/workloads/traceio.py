"""Trace serialization: save/load traces as compressed ``.npz`` files.

The synthetic suite is fully deterministic from its registry seeds, so
on-disk traces are never *required*; this module exists for
interoperability — exporting a generated trace for inspection, or
importing an externally converted trace (e.g. one distilled from a
ChampSim trace) into the simulator.

Format: a NumPy ``.npz`` archive with arrays ``pcs``/``addrs``/``flags``
plus a JSON-encoded header carrying the name, suite, format version and
metadata.  The format is versioned so later revisions stay loadable.
"""

from __future__ import annotations

import json
import os
import pathlib
import zipfile
from typing import Union

import numpy as np

from .trace import Trace

#: bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 1

_HEADER_KEY = "header"
PathLike = Union[str, pathlib.Path]


class TraceFormatError(ValueError):
    """Raised when a file is not a valid serialized trace."""


def save_trace(trace: Trace, path: PathLike) -> pathlib.Path:
    """Write ``trace`` to ``path`` (``.npz`` appended if missing).

    The extension is appended to the *name*, never via
    ``Path.with_suffix``: workload names are dotted
    (``spec06.mcf_like.0``), and suffix surgery on multi-dot names
    rewrites the wrong component (e.g. a trailing-dot name collapses).
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    header = {
        "format_version": FORMAT_VERSION,
        "name": trace.name,
        "suite": trace.suite,
        "metadata": trace.metadata,
        "num_instructions": len(trace),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    # Write-then-rename: concurrent readers (engine workers sharing a
    # REPRO_TRACE_DIR) must never observe a torn archive.
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    try:
        np.savez_compressed(
            tmp,
            pcs=trace.pcs,
            addrs=trace.addrs,
            flags=trace.flags,
            **{_HEADER_KEY: np.frombuffer(
                json.dumps(header).encode("utf-8"), dtype=np.uint8
            )},
        )
        # savez appends .npz to names without it
        written = tmp if tmp.exists() else tmp.with_name(tmp.name + ".npz")
        os.replace(written, path)
    except BaseException:
        for leftover in (tmp, tmp.with_name(tmp.name + ".npz")):
            if leftover.exists():
                leftover.unlink()
        raise
    return path


def load_trace(path: PathLike) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    path = pathlib.Path(path)
    try:
        with np.load(path) as archive:
            missing = {_HEADER_KEY, "pcs", "addrs", "flags"} - set(
                archive.files
            )
            if missing:
                raise TraceFormatError(
                    f"{path}: missing arrays {sorted(missing)}"
                )
            header = json.loads(bytes(archive[_HEADER_KEY]).decode("utf-8"))
            pcs = archive["pcs"]
            addrs = archive["addrs"]
            flags = archive["flags"]
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
        # np.load raises BadZipFile on torn/truncated archives and
        # KeyError on missing members; both mean "not a valid trace".
        if isinstance(exc, TraceFormatError):
            raise
        raise TraceFormatError(f"{path}: not a trace archive ({exc})") from exc

    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise TraceFormatError(
            f"{path}: format version {version!r}, expected {FORMAT_VERSION}"
        )
    if not (len(pcs) == len(addrs) == len(flags)):
        raise TraceFormatError(f"{path}: array length mismatch")
    if len(pcs) != header.get("num_instructions"):
        raise TraceFormatError(f"{path}: header/array length mismatch")
    return Trace(
        name=header["name"],
        suite=header["suite"],
        pcs=pcs,
        addrs=addrs,
        flags=flags.astype(np.uint8),
        metadata=header.get("metadata") or {},
    )
