"""Experiment configurations: cache designs CD1-CD4 and hierarchy builders.

Paper Table 7::

    CD1  OCP + 1 L2C prefetcher            (default: POPET + Pythia)
    CD2  OCP + 1 L1D prefetcher            (default: POPET + IPCP)
    CD3  OCP + 2 L2C prefetchers           (default: POPET + SMS + Pythia)
    CD4  OCP + 1 L1D + 1 L2C prefetcher    (default: POPET + IPCP + Pythia)

Experiments run on the scaled system (DESIGN.md scaling argument) with the
paper's default 3.2 GB/s per-core bandwidth unless a sweep overrides it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..ocp import make_ocp
from ..prefetchers import make_prefetcher
from ..sim.hierarchy import CacheHierarchy
from ..sim.params import SystemParams, scaled_system


@dataclass(frozen=True)
class CacheDesign:
    """One evaluated system configuration."""

    name: str
    prefetcher_names: Tuple[str, ...]
    ocp_name: Optional[str]
    bandwidth_gbps: float = 3.2
    ocp_issue_latency: int = 6

    # -- Table 7 presets -----------------------------------------------------

    @classmethod
    def cd1(cls, l2c: str = "pythia", ocp: Optional[str] = "popet",
            bandwidth_gbps: float = 3.2) -> "CacheDesign":
        return cls("CD1", (l2c,), ocp, bandwidth_gbps)

    @classmethod
    def cd2(cls, l1d: str = "ipcp", ocp: Optional[str] = "popet",
            bandwidth_gbps: float = 3.2) -> "CacheDesign":
        return cls("CD2", (l1d,), ocp, bandwidth_gbps)

    @classmethod
    def cd3(cls, l2c_a: str = "sms", l2c_b: str = "pythia",
            ocp: Optional[str] = "popet",
            bandwidth_gbps: float = 3.2) -> "CacheDesign":
        return cls("CD3", (l2c_a, l2c_b), ocp, bandwidth_gbps)

    @classmethod
    def cd4(cls, l1d: str = "ipcp", l2c: str = "pythia",
            ocp: Optional[str] = "popet",
            bandwidth_gbps: float = 3.2) -> "CacheDesign":
        return cls("CD4", (l1d, l2c), ocp, bandwidth_gbps)

    # -- variants ---------------------------------------------------------------

    def without_mechanisms(self) -> "CacheDesign":
        """The no-prefetching, no-OCP baseline of the same system."""
        return replace(self, name=f"{self.name}-baseline",
                       prefetcher_names=(), ocp_name=None)

    def only_ocp(self) -> "CacheDesign":
        return replace(self, name=f"{self.name}-ocp-only",
                       prefetcher_names=())

    def only_prefetchers(self) -> "CacheDesign":
        return replace(self, name=f"{self.name}-pf-only", ocp_name=None)

    def with_bandwidth(self, bandwidth_gbps: float) -> "CacheDesign":
        return replace(self, bandwidth_gbps=bandwidth_gbps)

    def with_ocp_issue_latency(self, cycles: int) -> "CacheDesign":
        return replace(self, ocp_issue_latency=cycles)

    def with_ocp(self, ocp: Optional[str]) -> "CacheDesign":
        return replace(self, ocp_name=ocp)

    def signature(self) -> tuple:
        """Hashable identity used by run caches."""
        return (
            self.prefetcher_names,
            self.ocp_name,
            self.bandwidth_gbps,
            self.ocp_issue_latency,
        )


def system_for(design: CacheDesign) -> SystemParams:
    params = scaled_system(bandwidth_gbps=design.bandwidth_gbps)
    return params.with_ocp_issue_latency(design.ocp_issue_latency)


def build_hierarchy(
    design: CacheDesign,
    params: Optional[SystemParams] = None,
    llc=None,
    dram=None,
) -> CacheHierarchy:
    """Instantiate a fresh hierarchy for one run of ``design``."""
    if params is None:
        params = system_for(design)
    prefetchers = [make_prefetcher(name) for name in design.prefetcher_names]
    ocp = make_ocp(design.ocp_name) if design.ocp_name else None
    return CacheHierarchy(
        params=params, prefetchers=prefetchers, ocp=ocp, llc=llc, dram=dram
    )
