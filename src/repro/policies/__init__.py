"""Prefetcher-OCP coordination policies."""

from .athena import AthenaPolicy
from .base import (
    CoordinationAction,
    CoordinationPolicy,
    FixedPolicy,
    NaivePolicy,
    enumerate_actions,
)
from .hpac import HpacPolicy, HpacThresholds
from .mab import MabPolicy
from .tlp import TlpPolicy

__all__ = [
    "AthenaPolicy",
    "CoordinationAction",
    "CoordinationPolicy",
    "FixedPolicy",
    "HpacPolicy",
    "HpacThresholds",
    "MabPolicy",
    "NaivePolicy",
    "TlpPolicy",
    "enumerate_actions",
]
