"""Figure 20 (appendix B.1/B.2): memory requests and LLC miss latency.

Paper shape: Naive inflates main-memory requests (+21.9%) and LLC miss
latency (+28.3%) over the baseline; Athena keeps both overheads small
(+5.8% and +1.7%).
"""

from conftest import run_once

from repro.experiments.figures import fig20_memory_traffic


def test_fig20(benchmark, ctx, save_result):
    result = run_once(benchmark, lambda: fig20_memory_traffic(ctx))
    save_result(result)

    rows = dict(result.rows)
    # Athena's traffic overhead is below Naive's.
    assert (
        rows["Athena"]["memory_requests"] < rows["Naive"]["memory_requests"]
    )
    # Athena's LLC miss-latency inflation stays small in absolute terms
    # (paper: +1.7%).  Naive's latency is not a reliable upper reference
    # in our substrate: with the shallow-adversity trace mix its
    # prefetching can *reduce* average miss latency below baseline.
    assert rows["Athena"]["llc_miss_latency"] < 1.05
    # POPET alone adds only its speculative requests; it stays lean.
    assert rows["POPET"]["memory_requests"] < rows["Naive"]["memory_requests"]
