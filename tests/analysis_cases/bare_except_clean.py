"""Fixture: narrow or genuinely-handled exception handlers."""


def read_config(path):
    try:
        with open(path) as fh:
            return fh.read()
    except (OSError, UnicodeDecodeError):
        return None


def drain(items, log):
    out = []
    for item in items:
        try:
            out.append(int(item))
        except Exception as exc:
            log.append(str(exc))
    return out
