"""Process-wide, content-addressed compiled-trace cache.

Every simulation starts by materializing its workload trace, and a
figure campaign asks for the same few hundred ``(spec, length)`` pairs
over and over — across figures, policies, seeds, and engine workers.
This module gives :func:`repro.workloads.suites.build_trace` a single
cached entry point:

* an in-memory LRU keyed by the *content fingerprint* of the build
  recipe — workload name/suite/pattern/seed/params plus the trace
  length and the cache schema version — bounded by a byte budget
  (``REPRO_TRACE_CACHE_MB``, default 256);
* an optional on-disk ``.npz`` tier (:mod:`repro.workloads.traceio`)
  shared across processes and runs: set ``REPRO_TRACE_DIR`` (or pass
  ``disk_dir``) and engine workers load traces instead of regenerating
  them.  Corrupt or stale files are rebuilt and overwritten, never
  trusted.

The fingerprint is a sha256 over the canonical recipe, so two specs
that would generate different instruction streams can never collide,
and a change to :data:`TRACE_SCHEMA` (bump it when generator output
changes *deliberately*) orphans every stale entry at once.

Cached traces are shared objects: treat them as immutable (the
simulators already do; use :meth:`~repro.workloads.trace.Trace.slice`
or :meth:`~repro.workloads.trace.Trace.repeated` for derived copies).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..obs.spans import span
from .trace import Trace
from .traceio import TraceFormatError, load_trace, save_trace

#: bump when generator behaviour changes deliberately (new golden trace
#: hashes): every fingerprint changes, orphaning stale disk entries.
TRACE_SCHEMA = 1

_DEFAULT_BUDGET_MB = 256.0


@dataclass
class TraceCacheStats:
    """Hit/build accounting for one cache lifetime."""

    hits: int = 0          # served from the in-memory LRU
    disk_hits: int = 0     # loaded from the on-disk store
    builds: int = 0        # generated from the spec
    evictions: int = 0

    @property
    def misses(self) -> int:
        return self.disk_hits + self.builds

    def to_dict(self) -> dict:
        """Machine-readable snapshot (metric exports, journal events)."""
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "builds": self.builds,
            "evictions": self.evictions,
        }


def fingerprint(spec, length: int) -> str:
    """Content hash of one compiled-trace recipe.

    The identity fields come from
    :meth:`~repro.workloads.suites.WorkloadSpec.canonical_recipe` —
    the same recipe the engine hashes into its result keys — so for an
    external trace the fingerprint covers the file's sha256 and
    adapter parameters but never its path.
    """
    recipe = {
        "schema": TRACE_SCHEMA,
        "length": length,
        **spec.canonical_recipe(),
    }
    blob = json.dumps(recipe, sort_keys=True, separators=(",", ":"),
                      default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class TraceCache:
    """Byte-bounded LRU of built traces with an optional disk tier."""

    def __init__(
        self,
        max_bytes: Optional[int] = None,
        disk_dir: Optional[os.PathLike] = None,
    ) -> None:
        if max_bytes is None:
            budget_mb = float(
                os.environ.get("REPRO_TRACE_CACHE_MB", _DEFAULT_BUDGET_MB)
            )
            max_bytes = int(budget_mb * 1024 * 1024)
        self.max_bytes = max_bytes
        if disk_dir is None:
            disk_dir = os.environ.get("REPRO_TRACE_DIR") or None
        self.disk_dir = pathlib.Path(disk_dir) if disk_dir else None
        self.stats = TraceCacheStats()
        self._entries: "OrderedDict[str, Trace]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    # -- sizing -------------------------------------------------------------

    @staticmethod
    def _trace_bytes(trace: Trace) -> int:
        return (trace.pcs.nbytes + trace.addrs.nbytes + trace.flags.nbytes)

    def _insert(self, key: str, trace: Trace) -> None:
        displaced = self._entries.get(key)
        if displaced is not None:  # racing builders: replace, don't leak
            self._bytes -= self._trace_bytes(displaced)
        self._entries[key] = trace
        self._bytes += self._trace_bytes(trace)
        while self._bytes > self.max_bytes and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= self._trace_bytes(evicted)
            self.stats.evictions += 1

    # -- disk tier ----------------------------------------------------------

    def _disk_path(self, key: str) -> Optional[pathlib.Path]:
        return self.disk_dir / key if self.disk_dir else None

    def _load_from_disk(self, key: str, length: int) -> Optional[Trace]:
        path = self._disk_path(key)
        if path is None:
            return None
        real = path.with_name(path.name + ".npz")
        if not real.exists():
            return None
        try:
            trace = load_trace(real)
        except TraceFormatError:
            return None
        if len(trace) != length:  # stale/corrupt: rebuild and overwrite
            return None
        return trace

    def _store_to_disk(self, key: str, trace: Trace) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            save_trace(trace, path)
        except OSError:  # a full/read-only disk never fails the build
            pass

    # -- the single entry point --------------------------------------------

    def get_or_build(self, spec, length: int) -> Trace:
        """The compiled trace for ``(spec, length)``, cheapest tier first."""
        key = fingerprint(spec, length)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return cached
        trace = self._load_from_disk(key, length)
        if trace is not None:
            with self._lock:
                self.stats.disk_hits += 1
                self._insert(key, trace)
            return trace
        # Only a genuine generator run is a trace_build span: cache and
        # disk hits above are (near-)free, and a warm run must show zero
        # of these in its journal.
        with span("trace_build", workload=getattr(spec, "name", "?"),
                  length=length):
            trace = spec.build(length)
        self._store_to_disk(key, trace)
        with self._lock:
            self.stats.builds += 1
            self._insert(key, trace)
        return trace

    def clear(self, disk: bool = False) -> None:
        """Drop the in-memory tier (and the disk store with ``disk=True``)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
        if disk and self.disk_dir is not None and self.disk_dir.exists():
            for entry in self.disk_dir.glob("*.npz"):
                try:
                    entry.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        return len(self._entries)


_CACHE: Optional[TraceCache] = None
_CACHE_LOCK = threading.Lock()


def trace_cache() -> TraceCache:
    """The process-wide cache (created lazily from the environment)."""
    global _CACHE
    if _CACHE is None:
        with _CACHE_LOCK:
            if _CACHE is None:
                _CACHE = TraceCache()
    return _CACHE


def reset_trace_cache(cache: Optional[TraceCache] = None) -> TraceCache:
    """Replace the process-wide cache (tests; env-var changes)."""
    global _CACHE
    with _CACHE_LOCK:
        _CACHE = cache if cache is not None else TraceCache()
    return _CACHE
