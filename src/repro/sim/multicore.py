"""Multi-core simulation: private L1D/L2C per core, shared LLC and DRAM.

Mirrors the paper's multi-core methodology (§6.1): each core runs its own
workload trace (replayed as needed), has private L1D/L2C with its own
prefetchers and OCP, and contends for the shared LLC and the shared DRAM
channel.  Each core also runs its *own* coordination-policy instance
(Athena is per-core hardware), using the single-core-tuned configuration
unaltered — exactly the paper's §7.4 setup.

Cores are interleaved in time order: at every step the core with the
smallest local clock executes its next instruction, so DRAM and LLC see an
(approximately) time-ordered request stream and bandwidth contention
behaves like a shared channel.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid a sim <-> policies import cycle
    from ..policies.base import CoordinationPolicy
from ..workloads.trace import (
    FLAG_BRANCH,
    FLAG_DEP,
    FLAG_LOAD,
    FLAG_MISPRED,
    FLAG_STORE,
    Trace,
)
from .cache import Cache
from .cpu import CoreModel
from .dram import MainMemory
from .hierarchy import CacheHierarchy
from .params import SystemParams
from .simulator import Simulator
from .stats import SimStats


@dataclass
class CoreResult:
    """Per-core outcome of a multi-core run."""

    workload: str
    instructions: int
    cycles: float
    stats: SimStats

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


@dataclass
class MultiCoreResult:
    cores: List[CoreResult] = field(default_factory=list)

    def weighted_speedup(self, baseline: "MultiCoreResult") -> float:
        """Geometric-mean per-core speedup against a baseline run."""
        if len(self.cores) != len(baseline.cores):
            raise ValueError("core count mismatch between runs")
        product = 1.0
        for mine, base in zip(self.cores, baseline.cores):
            if base.ipc <= 0:
                raise ValueError(f"baseline IPC is zero for {base.workload}")
            product *= mine.ipc / base.ipc
        return product ** (1.0 / len(self.cores))


class _CoreContext:
    """Execution state of one core inside the multi-core loop."""

    def __init__(
        self,
        core_id: int,
        trace: Trace,
        hierarchy: CacheHierarchy,
        policy: Optional["CoordinationPolicy"],
        epoch_length: int,
    ) -> None:
        self.core_id = core_id
        self.trace = trace
        self.hierarchy = hierarchy
        self.policy = policy
        self.epoch_length = epoch_length
        self.core = CoreModel(hierarchy.params.core)
        self.index = 0
        self.retired = 0
        self.warmup_instructions = 0
        self.measure_start_cycles = 0.0
        self._warmed = False
        # Plain-scalar trace columns, converted once (no per-instruction
        # int(np.int64) conversions in step()).
        self._pcs = trace.pcs.tolist()
        self._addrs = trace.addrs.tolist()
        self._flags = trace.flags.tolist()
        self._epoch_snapshot = hierarchy.stats.snapshot()
        self._epoch_cycles = 0.0
        self._epoch_busy = hierarchy.dram.busy_cycles
        self._epoch_kinds = hierarchy.dram.kind_counts()
        self._epoch_index = 0
        if policy is not None:
            policy.attach(hierarchy)

    def done(self, limit: int) -> bool:
        return self.retired >= limit

    def step(self) -> None:
        """Execute one instruction (replaying the trace as needed)."""
        i = self.index % len(self._flags)
        f = self._flags[i]
        hierarchy = self.hierarchy
        core = self.core
        stats = hierarchy.stats
        if f & FLAG_LOAD:
            issue = core.begin((f & FLAG_DEP) != 0)
            result = hierarchy.load(self._pcs[i], self._addrs[i], issue)
            core.finish(result.latency, True)
            stats.loads += 1
        elif f & FLAG_STORE:
            issue = core.begin()
            latency = hierarchy.store(self._pcs[i], self._addrs[i], issue)
            core.finish(latency)
            stats.stores += 1
        elif f & FLAG_BRANCH:
            mispred = bool(f & FLAG_MISPRED)
            core.step(1.0, False, False, mispred)
            stats.branches += 1
            if mispred:
                stats.mispredicted_branches += 1
        else:
            core.step()
        stats.instructions += 1
        self.index += 1
        self.retired += 1
        if not self._warmed and self.retired >= self.warmup_instructions:
            # End of this core's warm-up: caches and predictors stay warm,
            # measured statistics restart (paper §6.1 methodology).  Only
            # the private caches' hit counters reset — the shared LLC is
            # still mid-warmup for other cores.
            self._warmed = True
            self.measure_start_cycles = core.cycles
            Simulator._reset_measured_stats(
                stats, hierarchy, include_shared_caches=False
            )
            self._epoch_snapshot = stats.snapshot()
            self._epoch_cycles = core.cycles
            self._epoch_busy = hierarchy.dram.busy_cycles
            self._epoch_kinds = hierarchy.dram.kind_counts()
        if self.policy is not None and self.retired % self.epoch_length == 0:
            self._end_epoch()

    def _end_epoch(self) -> None:
        hierarchy = self.hierarchy
        sim = Simulator.__new__(Simulator)  # reuse telemetry construction
        sim.hierarchy = hierarchy
        telemetry = sim._build_telemetry(
            self._epoch_index,
            hierarchy.stats,
            self._epoch_snapshot,
            self.core.cycles - self._epoch_cycles,
            hierarchy.dram.busy_cycles - self._epoch_busy,
            self._epoch_kinds,
        )
        action = self.policy.decide(telemetry)
        hierarchy.set_prefetchers_enabled(action.prefetchers_enabled)
        hierarchy.set_ocp_enabled(action.ocp_enabled)
        hierarchy.set_degree_fraction(action.degree_fraction)
        self._epoch_index += 1
        self._epoch_snapshot = hierarchy.stats.snapshot()
        self._epoch_cycles = self.core.cycles
        self._epoch_busy = hierarchy.dram.busy_cycles
        self._epoch_kinds = hierarchy.dram.kind_counts()


class MultiCoreSimulator:
    """Run N workloads on N cores with shared LLC + DRAM."""

    def __init__(
        self,
        traces: Sequence[Trace],
        params: SystemParams,
        hierarchy_factory,
        policy_factory,
        instructions_per_core: int,
        epoch_length: int = 250,
        warmup_fraction: float = 0.0,
    ) -> None:
        """``hierarchy_factory(params, llc, dram)`` builds one core's
        private hierarchy (with its prefetchers/OCP) around the shared LLC
        and DRAM; ``policy_factory()`` builds one per-core policy instance
        (or returns ``None`` for uncoordinated runs)."""
        if not traces:
            raise ValueError("need at least one trace")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        self.params = params
        self.shared_llc = Cache(params.llc)
        self.shared_dram = MainMemory(params.dram)
        self.instructions_per_core = instructions_per_core
        self.contexts: List[_CoreContext] = []
        for core_id, trace in enumerate(traces):
            hierarchy = hierarchy_factory(
                params, self.shared_llc, self.shared_dram
            )
            context = _CoreContext(
                core_id=core_id,
                trace=trace,
                hierarchy=hierarchy,
                policy=policy_factory(),
                epoch_length=epoch_length,
            )
            context.warmup_instructions = int(
                instructions_per_core * warmup_fraction
            )
            context._warmed = context.warmup_instructions == 0
            self.contexts.append(context)

    def run(self) -> MultiCoreResult:
        limit = self.instructions_per_core
        heap = [(0.0, ctx.core_id) for ctx in self.contexts]
        heapq.heapify(heap)
        while heap:
            _, core_id = heapq.heappop(heap)
            ctx = self.contexts[core_id]
            if ctx.done(limit):
                continue
            ctx.step()
            if not ctx.done(limit):
                heapq.heappush(heap, (ctx.core.cycles, core_id))
        result = MultiCoreResult()
        for ctx in self.contexts:
            measured_cycles = ctx.core.cycles - ctx.measure_start_cycles
            ctx.hierarchy.stats.cycles = measured_cycles
            result.cores.append(
                CoreResult(
                    workload=ctx.trace.name,
                    instructions=ctx.retired - ctx.warmup_instructions,
                    cycles=measured_cycles,
                    stats=ctx.hierarchy.stats,
                )
            )
        return result
