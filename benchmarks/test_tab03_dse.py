"""Table 3: automated design-space exploration on the tuning workloads.

Paper shape: greedy forward selection keeps a small feature set headed by
prefetcher/OCP accuracy; the tuned configuration clearly improves the
tuning-set geomean over baseline.
"""

import pathlib

from conftest import RESULTS_DIR, run_once

from repro.experiments.dse import run_dse


def test_tab03(benchmark, ctx):
    result = run_once(
        benchmark,
        lambda: run_dse(ctx, num_tuning_workloads=5, max_features=4),
    )
    table = result.format_table()
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "Tab3.txt").write_text(table + "\n")

    assert 1 <= len(result.selected_features) <= 4
    # Every selected feature must be one of the paper's seven candidates.
    from repro.sim.stats import CANDIDATE_FEATURES
    assert set(result.selected_features) <= set(CANDIDATE_FEATURES)
    assert result.best_score > 1.0
    # Forward selection never accepts a feature that lowers the score.
    scores = [score for _, score in result.feature_trace]
    assert all(b >= a for a, b in zip(scores, scores[1:]))
