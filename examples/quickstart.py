#!/usr/bin/env python3
"""Quickstart: run one workload under Athena and the baselines.

This is the 60-second tour of the library: build a workload trace, build
the paper's default CD1 system (POPET off-chip predictor + Pythia L2C
prefetcher at 3.2 GB/s), and compare the coordination policies.

Run:
    python examples/quickstart.py [workload] [trace_length]
"""

import sys

from repro.experiments.configs import CacheDesign, build_hierarchy
from repro.experiments.runner import make_policy
from repro.sim.simulator import Simulator
from repro.workloads.suites import build_trace, find_workload


def run(workload_name: str, length: int) -> None:
    spec = find_workload(workload_name)
    trace = build_trace(spec, length)
    print(f"workload: {spec.name}  (suite={spec.suite}, "
          f"pattern={spec.pattern}, {len(trace)} instructions)")
    print(f"memory intensity: {trace.memory_intensity():.2f}, "
          f"footprint: {trace.footprint_lines()} lines")
    print()

    design = CacheDesign.cd1()
    configs = [
        ("baseline (no PF, no OCP)", design.without_mechanisms(), "none"),
        ("POPET only", design.only_ocp(), "none"),
        ("Pythia only", design.only_prefetchers(), "none"),
        ("Naive (both, uncoordinated)", design, "none"),
        ("HPAC", design, "hpac"),
        ("MAB", design, "mab"),
        ("Athena", design, "athena"),
    ]

    baseline_ipc = None
    print(f"{'configuration':<30} {'IPC':>8} {'speedup':>8} "
          f"{'LLC MPKI':>9} {'PF acc':>7} {'OCP acc':>8}")
    for label, variant, policy_name in configs:
        hierarchy = build_hierarchy(variant)
        result = Simulator(
            trace,
            hierarchy,
            policy=make_policy(policy_name),
            epoch_length=max(100, length // 80),
        ).run()
        if baseline_ipc is None:
            baseline_ipc = result.ipc
        stats = result.stats
        print(
            f"{label:<30} {result.ipc:>8.4f} "
            f"{result.ipc / baseline_ipc:>8.3f} "
            f"{stats.llc_mpki:>9.1f} "
            f"{stats.prefetch_accuracy:>7.2f} "
            f"{stats.ocp_accuracy:>8.2f}"
        )


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "spec06.mcf_like.0"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 16_000
    run(workload, length)


if __name__ == "__main__":
    main()
