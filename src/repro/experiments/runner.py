"""Experiment runner: policies, cached runs, speedups, and the StaticBest
oracle.

The :class:`ExperimentContext` memoizes simulation runs keyed by
(workload, trace length, system signature, policy), so figure drivers that
share configurations (e.g. every CD1 figure needs the same baseline runs)
pay for each simulation once per process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.config import AthenaConfig
from ..policies.athena import AthenaPolicy
from ..policies.base import CoordinationPolicy, FixedPolicy, NaivePolicy
from ..policies.hpac import HpacPolicy
from ..policies.mab import MabPolicy
from ..policies.tlp import TlpPolicy
from ..sim.simulator import SimulationResult, Simulator
from ..workloads.suites import (
    ReproScale,
    WorkloadSpec,
    active_scale,
    build_trace,
    evaluation_workloads,
    representative_subset,
)
from .configs import CacheDesign, build_hierarchy

PolicyFactory = Callable[[], Optional[CoordinationPolicy]]

#: policy registry used by figure drivers and the CLI examples.
POLICY_FACTORIES: Dict[str, PolicyFactory] = {
    "none": lambda: None,
    "naive": NaivePolicy,
    "hpac": HpacPolicy,
    "mab": MabPolicy,
    "tlp": TlpPolicy,
    "athena": AthenaPolicy,
}


def make_policy(name: str, **kwargs) -> Optional[CoordinationPolicy]:
    """Instantiate a coordination policy by registry name."""
    if name == "athena" and kwargs:
        return AthenaPolicy(AthenaConfig(**kwargs))
    try:
        factory = POLICY_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; valid: {sorted(POLICY_FACTORIES)}"
        ) from None
    return factory()


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's aggregate speedup metric)."""
    if not values:
        raise ValueError("geomean of empty sequence")
    log_sum = 0.0
    for v in values:
        if v <= 0:
            raise ValueError(f"geomean requires positive values, got {v}")
        log_sum += math.log(v)
    return math.exp(log_sum / len(values))


@dataclass
class RunRecord:
    """Cached outcome of one simulation."""

    ipc: float
    result: SimulationResult


class ExperimentContext:
    """Run cache + convenience helpers shared by all figure drivers."""

    def __init__(self, scale: Optional[ReproScale] = None) -> None:
        self.scale = scale if scale is not None else active_scale()
        self._cache: Dict[tuple, RunRecord] = {}

    # -- primitive runs -------------------------------------------------------

    def run(
        self,
        spec: WorkloadSpec,
        design: CacheDesign,
        policy_name: str = "none",
        athena_config: Optional[AthenaConfig] = None,
    ) -> RunRecord:
        key = (
            spec.name,
            self.scale.trace_length,
            design.signature(),
            policy_name,
            athena_config,
        )
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        trace = build_trace(spec, self.scale.trace_length)
        hierarchy = build_hierarchy(design)
        if policy_name == "athena" and athena_config is not None:
            policy: Optional[CoordinationPolicy] = AthenaPolicy(athena_config)
        else:
            policy = make_policy(policy_name)
        result = Simulator(
            trace,
            hierarchy,
            policy=policy,
            epoch_length=self.scale.epoch_length,
            warmup_fraction=self.scale.warmup_fraction,
        ).run()
        record = RunRecord(ipc=result.ipc, result=result)
        self._cache[key] = record
        return record

    def baseline_ipc(self, spec: WorkloadSpec, design: CacheDesign) -> float:
        return self.run(spec, design.without_mechanisms()).ipc

    #: seed offsets mixed into the Athena agent seed for trajectory
    #: averaging (see ReproScale.policy_seeds).
    _SEED_STREAM = (0, 0x9D2C, 0x3A71, 0x61C8, 0x7F4A)

    def speedup(
        self,
        spec: WorkloadSpec,
        design: CacheDesign,
        policy_name: str = "none",
        athena_config: Optional[AthenaConfig] = None,
    ) -> float:
        base = self.baseline_ipc(spec, design)
        if base <= 0:
            raise RuntimeError(f"zero baseline IPC for {spec.name}")
        if policy_name == "athena":
            # Average a few independent agent trajectories: a single
            # ~40-epoch SARSA run is one noisy sample of the learned
            # policy, and the paper's 250K-epoch runs average that noise
            # away internally.
            config = athena_config if athena_config is not None else AthenaConfig()
            ipcs = []
            for offset in self._SEED_STREAM[: max(1, self.scale.policy_seeds)]:
                seeded = config.with_updates(seed=config.seed ^ offset)
                ipcs.append(self.run(spec, design, policy_name, seeded).ipc)
            return geomean(ipcs) / base
        record = self.run(spec, design, policy_name, athena_config)
        return record.ipc / base

    # -- oracle ------------------------------------------------------------------

    def static_combinations(self, design: CacheDesign) -> List[CacheDesign]:
        """All on/off subsets of the design's mechanisms (incl. baseline)."""
        out: List[CacheDesign] = []
        n = len(design.prefetcher_names)
        ocp_options = [None, design.ocp_name] if design.ocp_name else [None]
        for mask in range(1 << n):
            chosen = tuple(
                name
                for i, name in enumerate(design.prefetcher_names)
                if (mask >> i) & 1
            )
            for ocp in ocp_options:
                out.append(
                    replace(
                        design,
                        name=f"{design.name}-static-{mask}-{ocp or 'noocp'}",
                        prefetcher_names=chosen,
                        ocp_name=ocp,
                    )
                )
        return out

    def static_best_speedup(
        self, spec: WorkloadSpec, design: CacheDesign
    ) -> float:
        """StaticBest oracle: best end-to-end static combination (§2.1.2)."""
        base = self.baseline_ipc(spec, design)
        best = base
        for combo in self.static_combinations(design):
            if not combo.prefetcher_names and combo.ocp_name is None:
                continue  # that's the baseline itself
            best = max(best, self.run(spec, combo).ipc)
        return best / base

    # -- workload classification (paper Figure 1) ---------------------------------

    def classify_workloads(
        self,
        design: CacheDesign,
        workloads: Sequence[WorkloadSpec],
    ) -> Tuple[List[WorkloadSpec], List[WorkloadSpec]]:
        """Split into (prefetcher-friendly, prefetcher-adverse) workloads.

        The paper defines the two categories *once*, from Figure 1's
        reference configuration (Pythia at L2C in the bandwidth-constrained
        CD1 system), and reuses that split in every later figure — a
        workload is "prefetcher-adverse" if the reference prefetcher alone
        degrades its performance.  ``design`` selects the memory-bandwidth
        configuration but the reference prefetcher stays Pythia/CD1.
        """
        reference = CacheDesign.cd1(
            bandwidth_gbps=design.bandwidth_gbps
        ).only_prefetchers()
        friendly: List[WorkloadSpec] = []
        adverse: List[WorkloadSpec] = []
        for spec in workloads:
            if self.speedup(spec, reference) >= 1.0:
                friendly.append(spec)
            else:
                adverse.append(spec)
        return friendly, adverse

    # -- aggregates ---------------------------------------------------------------

    def workload_pool(self, count: Optional[int] = None):
        n = count if count is not None else self.scale.workloads_per_figure
        return representative_subset(n, evaluation_workloads())

    def geomean_speedup(
        self,
        workloads: Sequence[WorkloadSpec],
        design: CacheDesign,
        policy_name: str = "none",
        athena_config: Optional[AthenaConfig] = None,
    ) -> float:
        return geomean(
            [
                self.speedup(spec, design, policy_name, athena_config)
                for spec in workloads
            ]
        )
