"""Tests for the multi-core simulator (shared LLC + DRAM)."""

import pytest

from repro.experiments.configs import CacheDesign, build_hierarchy, system_for
from repro.policies.athena import AthenaPolicy
from repro.sim.multicore import MultiCoreResult, MultiCoreSimulator
from repro.workloads.generators import GENERATORS


def traces(n, pattern="streaming", length=2000):
    return [
        GENERATORS[pattern](f"t{i}", "test", 10 + i, length) for i in range(n)
    ]


def run_multicore(n_cores=2, pattern="streaming", design=None,
                  policy_factory=lambda: None, length=2000):
    design = design or CacheDesign.cd1()
    params = system_for(design)
    sim = MultiCoreSimulator(
        traces=traces(n_cores, pattern, length),
        params=params,
        hierarchy_factory=lambda p, llc, dram: build_hierarchy(
            design, params=p, llc=llc, dram=dram
        ),
        policy_factory=policy_factory,
        instructions_per_core=length,
        epoch_length=200,
    )
    return sim.run()


class TestBasics:
    def test_all_cores_complete(self):
        result = run_multicore(4)
        assert len(result.cores) == 4
        for core in result.cores:
            assert core.instructions == 2000
            assert core.ipc > 0

    def test_empty_traces_rejected(self):
        design = CacheDesign.cd1()
        with pytest.raises(ValueError):
            MultiCoreSimulator(
                traces=[], params=system_for(design),
                hierarchy_factory=lambda p, llc, dram: None,
                policy_factory=lambda: None,
                instructions_per_core=100,
            )

    def test_short_trace_replayed(self):
        design = CacheDesign.cd1().without_mechanisms()
        params = system_for(design)
        short = traces(1, length=500)
        sim = MultiCoreSimulator(
            traces=short, params=params,
            hierarchy_factory=lambda p, llc, dram: build_hierarchy(
                design, params=p, llc=llc, dram=dram
            ),
            policy_factory=lambda: None,
            instructions_per_core=2000,
        )
        result = sim.run()
        assert result.cores[0].instructions == 2000


class TestSharedResources:
    def test_contention_slows_cores_down(self):
        """Two memory-bound cores sharing one DRAM channel must each run
        slower than a core running alone."""
        alone = run_multicore(1, pattern="hash_probe")
        shared = run_multicore(4, pattern="hash_probe")
        assert shared.cores[0].ipc < alone.cores[0].ipc

    def test_weighted_speedup_identity(self):
        result = run_multicore(2)
        assert result.weighted_speedup(result) == pytest.approx(1.0)

    def test_weighted_speedup_mismatch_rejected(self):
        a = run_multicore(2)
        b = run_multicore(4)
        with pytest.raises(ValueError):
            a.weighted_speedup(b)

    def test_per_core_policies_independent(self):
        design = CacheDesign.cd1()
        params = system_for(design)
        policies = []

        def factory():
            policy = AthenaPolicy()
            policies.append(policy)
            return policy

        sim = MultiCoreSimulator(
            traces=traces(2, "hash_probe"),
            params=params,
            hierarchy_factory=lambda p, llc, dram: build_hierarchy(
                design, params=p, llc=llc, dram=dram
            ),
            policy_factory=factory,
            instructions_per_core=2000,
            epoch_length=200,
        )
        sim.run()
        assert len(policies) == 2
        assert policies[0].agent is not policies[1].agent
        assert policies[0].action_history
