"""Process-wide, content-addressed compiled-trace cache.

Every simulation starts by materializing its workload trace, and a
figure campaign asks for the same few hundred ``(spec, length)`` pairs
over and over — across figures, policies, seeds, and engine workers.
This module gives :func:`repro.workloads.suites.build_trace` a single
cached entry point:

* an in-memory LRU keyed by the *content fingerprint* of the build
  recipe — workload name/suite/pattern/seed/params plus the trace
  length and the cache schema version — bounded by a byte budget
  (``REPRO_TRACE_CACHE_MB``, default 256);
* an optional on-disk ``.npz`` tier (:mod:`repro.workloads.traceio`)
  shared across processes and runs: set ``REPRO_TRACE_DIR`` (or pass
  ``disk_dir``) and engine workers load traces instead of regenerating
  them.  Corrupt or stale files are rebuilt and overwritten, never
  trusted.

The fingerprint is a sha256 over the canonical recipe, so two specs
that would generate different instruction streams can never collide,
and a change to :data:`TRACE_SCHEMA` (bump it when generator output
changes *deliberately*) orphans every stale entry at once.

Cached traces are shared objects: treat them as immutable (the
simulators already do; use :meth:`~repro.workloads.trace.Trace.slice`
or :meth:`~repro.workloads.trace.Trace.repeated` for derived copies).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import shutil
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Optional

from ..obs.spans import span
from .streaming import TraceBlock, TraceStream, blocks_from_trace
from .trace import Trace
from .traceio import TraceFormatError, load_trace, save_trace

#: bump when generator behaviour changes deliberately (new golden trace
#: hashes): every fingerprint changes, orphaning stale disk entries.
TRACE_SCHEMA = 1

_DEFAULT_BUDGET_MB = 256.0


@dataclass
class TraceCacheStats:
    """Hit/build accounting for one cache lifetime."""

    hits: int = 0          # served from the in-memory LRU
    disk_hits: int = 0     # loaded from the on-disk store
    builds: int = 0        # generated from the spec
    evictions: int = 0
    chunk_hits: int = 0    # streamed from the per-chunk disk tier

    @property
    def misses(self) -> int:
        return self.disk_hits + self.builds

    def to_dict(self) -> dict:
        """Machine-readable snapshot (metric exports, journal events)."""
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "builds": self.builds,
            "evictions": self.evictions,
            "chunk_hits": self.chunk_hits,
        }


def fingerprint(spec, length: int) -> str:
    """Content hash of one compiled-trace recipe.

    The identity fields come from
    :meth:`~repro.workloads.suites.WorkloadSpec.canonical_recipe` —
    the same recipe the engine hashes into its result keys — so for an
    external trace the fingerprint covers the file's sha256 and
    adapter parameters but never its path.
    """
    recipe = {
        "schema": TRACE_SCHEMA,
        "length": length,
        **spec.canonical_recipe(),
    }
    blob = json.dumps(recipe, sort_keys=True, separators=(",", ":"),
                      default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class TraceCache:
    """Byte-bounded LRU of built traces with an optional disk tier."""

    def __init__(
        self,
        max_bytes: Optional[int] = None,
        disk_dir: Optional[os.PathLike] = None,
    ) -> None:
        if max_bytes is None:
            budget_mb = float(
                os.environ.get("REPRO_TRACE_CACHE_MB", _DEFAULT_BUDGET_MB)
            )
            max_bytes = int(budget_mb * 1024 * 1024)
        self.max_bytes = max_bytes
        if disk_dir is None:
            disk_dir = os.environ.get("REPRO_TRACE_DIR") or None
        self.disk_dir = pathlib.Path(disk_dir) if disk_dir else None
        self.stats = TraceCacheStats()
        self._entries: "OrderedDict[str, Trace]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    # -- sizing -------------------------------------------------------------

    @staticmethod
    def _trace_bytes(trace: Trace) -> int:
        return (trace.pcs.nbytes + trace.addrs.nbytes + trace.flags.nbytes)

    def _insert(self, key: str, trace: Trace) -> None:
        displaced = self._entries.get(key)
        if displaced is not None:  # racing builders: replace, don't leak
            self._bytes -= self._trace_bytes(displaced)
        self._entries[key] = trace
        self._bytes += self._trace_bytes(trace)
        while self._bytes > self.max_bytes and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= self._trace_bytes(evicted)
            self.stats.evictions += 1

    # -- disk tier ----------------------------------------------------------

    def _disk_path(self, key: str) -> Optional[pathlib.Path]:
        return self.disk_dir / key if self.disk_dir else None

    def _load_from_disk(self, key: str, length: int) -> Optional[Trace]:
        path = self._disk_path(key)
        if path is None:
            return None
        real = path.with_name(path.name + ".npz")
        if not real.exists():
            return None
        try:
            trace = load_trace(real)
        except TraceFormatError:
            return None
        if len(trace) != length:  # stale/corrupt: rebuild and overwrite
            return None
        return trace

    def _store_to_disk(self, key: str, trace: Trace) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            save_trace(trace, path)
        except OSError:  # a full/read-only disk never fails the build
            pass

    # -- the single entry point --------------------------------------------

    def get_or_build(self, spec, length: int) -> Trace:
        """The compiled trace for ``(spec, length)``, cheapest tier first."""
        key = fingerprint(spec, length)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return cached
        trace = self._load_from_disk(key, length)
        if trace is not None:
            with self._lock:
                self.stats.disk_hits += 1
                self._insert(key, trace)
            return trace
        # Only a genuine generator run is a trace_build span: cache and
        # disk hits above are (near-)free, and a warm run must show zero
        # of these in its journal.
        with span("trace_build", workload=getattr(spec, "name", "?"),
                  length=length):
            trace = spec.build(length)
        self._store_to_disk(key, trace)
        with self._lock:
            self.stats.builds += 1
            self._insert(key, trace)
        return trace

    # -- per-chunk disk tier (streamed traces) ------------------------------

    def _chunk_dir(
        self, key: str, block_size: int
    ) -> Optional[pathlib.Path]:
        """Directory holding one streamed trace's chunk files.

        Keyed by (content fingerprint, block size): chunk boundaries are
        part of the stored layout, so different block sizes are distinct
        entries — the *content* key never changes.
        """
        if self.disk_dir is None:
            return None
        return self.disk_dir / "chunks" / f"{key}.b{block_size}"

    def _load_chunk_meta(
        self, key: str, length: int, block_size: int
    ) -> Optional[dict]:
        """The completeness marker of a chunk set, or ``None``.

        ``meta.json`` is written *after* the last chunk file, so its
        presence (with matching schema/length/block size) certifies the
        whole set; a crashed partial build leaves no marker and is
        rebuilt from scratch.
        """
        cdir = self._chunk_dir(key, block_size)
        if cdir is None:
            return None
        try:
            meta = json.loads((cdir / "meta.json").read_text())
        except (OSError, ValueError):
            return None
        if (
            meta.get("schema") != TRACE_SCHEMA
            or meta.get("length") != length
            or meta.get("block_size") != block_size
        ):
            return None
        return meta

    def _read_chunks(
        self, cdir: pathlib.Path, meta: dict, start_chunk: int = 0
    ) -> Iterator[TraceBlock]:
        """Yield blocks from a complete chunk set, one file at a time."""
        block_size = meta["block_size"]
        for index in range(start_chunk, meta["chunks"]):
            piece = load_trace(cdir / f"chunk-{index:06d}.npz")
            yield TraceBlock(
                index=index,
                start=index * block_size,
                pcs=piece.pcs,
                addrs=piece.addrs,
                flags=piece.flags,
            )

    def _stream_from_chunks(
        self, key: str, meta: dict, block_size: int
    ) -> TraceStream:
        cdir = self._chunk_dir(key, block_size)
        return TraceStream(
            name=meta["name"],
            suite=meta["suite"],
            length=meta["length"],
            block_size=block_size,
            factory=lambda: self._read_chunks(cdir, meta),
            seek=lambda start: self._read_chunks(cdir, meta, start),
            metadata=dict(meta.get("metadata") or {}),
        )

    @staticmethod
    def _stream_from_trace(trace: Trace, block_size: int) -> TraceStream:
        """Re-block a whole-trace tier hit (views of the cached arrays)."""
        return TraceStream(
            name=trace.name,
            suite=trace.suite,
            length=len(trace),
            block_size=block_size,
            factory=lambda: blocks_from_trace(trace, block_size),
            seek=lambda start: blocks_from_trace(trace, block_size, start),
            metadata=dict(trace.metadata),
        )

    def stream(self, spec, length: int, block_size: int) -> TraceStream:
        """The trace for ``(spec, length)`` as a block stream.

        Tier order: a whole trace already in memory or on disk is
        re-blocked (free); otherwise a complete per-chunk set streams
        from disk one chunk at a time; otherwise the trace is emitted
        cold — a genuine ``trace_build`` — with every finished block
        teed into the chunk set so the next run streams warm.  Only the
        cold tier ever holds more than one block in memory (the pump's
        bounded queue), and none of the tiers materialize the whole
        trace.
        """
        key = fingerprint(spec, length)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
        if cached is not None:
            return self._stream_from_trace(cached, block_size)
        meta = self._load_chunk_meta(key, length, block_size)
        if meta is not None:
            with self._lock:
                self.stats.chunk_hits += 1
            return self._stream_from_chunks(key, meta, block_size)
        whole = self._load_from_disk(key, length)
        if whole is not None:
            with self._lock:
                self.stats.disk_hits += 1
                self._insert(key, whole)
            return self._stream_from_trace(whole, block_size)
        return self._stream_cold(spec, key, length, block_size)

    def _stream_cold(
        self, spec, key: str, length: int, block_size: int
    ) -> TraceStream:
        """Cold tier: emit blocks live, teeing each into the chunk set."""
        raw = spec.stream(length, block_size)
        cdir = self._chunk_dir(key, block_size)

        def build_iter() -> Iterator[TraceBlock]:
            with self._lock:
                self.stats.builds += 1
            writable = cdir is not None
            if writable:
                try:
                    cdir.mkdir(parents=True, exist_ok=True)
                except OSError:
                    writable = False
            chunks = 0
            with span("trace_build", workload=getattr(spec, "name", "?"),
                      length=length):
                for block in raw:
                    if writable:
                        piece = Trace(
                            name=raw.name, suite=raw.suite,
                            pcs=block.pcs, addrs=block.addrs,
                            flags=block.flags,
                            metadata={"chunk": block.index,
                                      "start": block.start},
                        )
                        try:
                            save_trace(piece, cdir / f"chunk-{chunks:06d}")
                        except OSError:
                            writable = False
                    chunks += 1
                    yield block
            # Traversal finished: the producer's overshoot rename (if
            # any) has landed on ``raw.name``.
            stream.name = raw.name
            if writable:
                meta = {
                    "schema": TRACE_SCHEMA,
                    "length": length,
                    "block_size": block_size,
                    "chunks": chunks,
                    "name": raw.name,
                    "suite": raw.suite,
                    "metadata": dict(raw.metadata),
                }
                try:
                    tmp = cdir / f"meta.json.tmp{os.getpid()}"
                    tmp.write_text(json.dumps(meta, sort_keys=True))
                    os.replace(tmp, cdir / "meta.json")
                except OSError:
                    pass

        def factory() -> Iterator[TraceBlock]:
            meta = self._load_chunk_meta(key, length, block_size)
            if meta is not None:  # a prior traversal completed the set
                stream.name = meta["name"]
                with self._lock:
                    self.stats.chunk_hits += 1
                return self._read_chunks(cdir, meta)
            return build_iter()

        def seek(start_chunk: int) -> Iterator[TraceBlock]:
            meta = self._load_chunk_meta(key, length, block_size)
            if meta is not None:
                stream.name = meta["name"]
                with self._lock:
                    self.stats.chunk_hits += 1
                return self._read_chunks(cdir, meta, start_chunk)
            # no complete chunk set: re-emit from the start and let
            # TraceStream.iter_from skip up to the target position
            return build_iter()

        stream = TraceStream(
            name=raw.name,
            suite=raw.suite,
            length=length,
            block_size=block_size,
            factory=factory,
            seek=seek,
            metadata=dict(raw.metadata),
        )
        return stream

    def clear(self, disk: bool = False) -> None:
        """Drop the in-memory tier (and the disk store with ``disk=True``)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
        if disk and self.disk_dir is not None and self.disk_dir.exists():
            for entry in self.disk_dir.glob("*.npz"):
                try:
                    entry.unlink()
                except OSError:
                    pass
            chunk_root = self.disk_dir / "chunks"
            if chunk_root.exists():
                shutil.rmtree(chunk_root, ignore_errors=True)

    def __len__(self) -> int:
        return len(self._entries)


_CACHE: Optional[TraceCache] = None
_CACHE_LOCK = threading.Lock()


def trace_cache() -> TraceCache:
    """The process-wide cache (created lazily from the environment)."""
    global _CACHE
    if _CACHE is None:
        with _CACHE_LOCK:
            if _CACHE is None:
                _CACHE = TraceCache()
    return _CACHE


def reset_trace_cache(cache: Optional[TraceCache] = None) -> TraceCache:
    """Replace the process-wide cache (tests; env-var changes)."""
    global _CACHE
    with _CACHE_LOCK:
        _CACHE = cache if cache is not None else TraceCache()
    return _CACHE
