"""Athena configuration (paper Table 3 + §5 design parameters).

The default values reproduce the configuration found by the paper's
automated design-space exploration: four selected state features, the
reward weights, and the SARSA hyperparameters.  The paper's epoch length
is 2000 instructions over 500M-instruction traces; experiments on the
short synthetic traces scale it down via ``epoch_length`` so the agent
sees a comparable number of decisions per program phase.

A few reproduction-specific knobs deviate deliberately (all documented in
DESIGN.md):

* ``explore_rounds`` forces a short round-robin warm-start over the action
  space.  The paper's ~250K-epoch runs can afford incidental exploration;
  at reproduction scale (tens of epochs per run) every action's transition
  reward must be sampled deterministically before the policy turns greedy.
* ``epsilon`` defaults to a small positive value rather than the paper's
  DSE-selected 0.0: one random epoch spent in a pathological action is
  amortised over 250K epochs in the paper but over ~60 here, so residual
  exploration must be rare.
* ``q_init`` is neutral (0.0) because the forced warm-start replaces the
  optimistic-initialisation exploration the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from ..sim.stats import SELECTED_FEATURES


@dataclass(frozen=True)
class RewardWeights:
    """Weights of the composite reward constituents (Table 2 / Table 3)."""

    cycles: float = 1.6
    llc_misses: float = 0.0
    llc_miss_latency: float = 0.0
    loads: float = 0.6
    mispredicted_branches: float = 1.0

    def correlated(self) -> Dict[str, float]:
        return {
            "cycles": self.cycles,
            "llc_misses": self.llc_misses,
            "llc_miss_latency": self.llc_miss_latency,
        }

    def uncorrelated(self) -> Dict[str, float]:
        return {
            "loads": self.loads,
            "mispredicted_branches": self.mispredicted_branches,
        }


@dataclass(frozen=True)
class AthenaConfig:
    """Full Athena agent configuration."""

    # -- RL hyperparameters (paper Table 3, re-tuned by this repo's DSE
    # harness for the scaled traces; the paper's exact values live in
    # ``PAPER_CONFIG``) ------------------------------------------------------
    alpha: float = 0.6
    gamma: float = 0.6
    epsilon: float = 0.01
    tau: float = 0.12
    epoch_length: int = 2000

    # -- state representation (Table 3 selected features) -------------------
    features: Tuple[str, ...] = SELECTED_FEATURES
    feature_bins: int = 4

    # -- reward (Table 2 / Table 3) -----------------------------------------
    reward_weights: RewardWeights = field(default_factory=RewardWeights)
    use_uncorrelated_reward: bool = True

    # -- QVStore geometry (Table 4) ------------------------------------------
    num_planes: int = 8
    rows_per_plane: int = 64
    q_value_bits: int = 8
    q_init: float = 0.0
    q_clip: float = 4.0

    # -- reproduction-scale knobs ---------------------------------------------
    seed: int = 0x47EA
    stateless: bool = False
    #: forced round-robin passes over the action space before the policy
    #: turns greedy.  The paper's ~250K-epoch runs explore incidentally via
    #: optimistic initialisation; at reproduction scale (tens of epochs)
    #: the agent must sample every action's transition reward a few times
    #: for the SARSA values to rank actions at all.
    explore_rounds: int = 2
    #: greedy-switch hysteresis: the incumbent action is kept unless a
    #: rival's Q-value exceeds it by this margin.  Suppresses dithering
    #: between near-tied actions, whose switching cost is negligible over
    #: the paper's 250K epochs but visible over tens of epochs.
    switch_margin: float = 0.1

    def with_updates(self, **kwargs) -> "AthenaConfig":
        return replace(self, **kwargs)

    def scaled_for_trace(self, trace_length: int) -> "AthenaConfig":
        """Scale the epoch length to the trace so the agent gets a
        decision count comparable to the paper's (2K instructions out of
        500M => ~250K epochs; here: ~1/80 of the trace, min 100)."""
        epoch = max(100, trace_length // 80)
        return self.with_updates(epoch_length=epoch)


#: The paper's exact Table 3 configuration (alpha = gamma = 0.6,
#: epsilon = 0, tau = 0.12), DSE-selected on 500M-instruction traces.
PAPER_CONFIG = AthenaConfig(alpha=0.6, gamma=0.6, epsilon=0.0)
