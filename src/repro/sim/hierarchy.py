"""Three-level cache hierarchy with prefetchers and an off-chip predictor.

This module glues together the functional caches, the DRAM bandwidth model,
the prefetchers and the OCP into the demand-access path the simulator
drives.  It implements the mechanisms the paper's observations rest on:

* demand loads traverse L1D -> L2C -> LLC -> DRAM, accumulating round-trip
  latencies (Table 5);
* a positive OCP prediction launches a speculative DRAM fetch
  ``ocp_issue_latency`` cycles after the load is seen, removing the on-chip
  lookup serialisation from true off-chip misses (Hermes semantics) at the
  cost of wasted bandwidth on mispredictions;
* prefetchers observe the demands looking up their level and fill candidate
  lines, consuming DRAM bandwidth and potentially polluting the LLC;
* fills, evictions, pollution, prefetch usefulness and off-chip fill
  accuracy (Figure 3) are all tracked and exposed to coordination policies.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..ocp.base import OffChipPredictor
from ..prefetchers.base import Prefetcher
from .cache import Cache
from .dram import MainMemory
from .params import LINE_SHIFT, SystemParams
from .stats import SimStats

#: Cap on remembered prefetch-evicted victims (models the finite hardware
#: pollution filter; also bounds memory in long runs).
_POLLUTION_WINDOW = 1 << 15

PrefetchFilter = Callable[[int, int, str], bool]


class CacheHierarchy:
    """Single core's view of the memory system.

    ``llc`` and ``dram`` may be shared across hierarchies (multi-core).
    """

    def __init__(
        self,
        params: SystemParams,
        prefetchers: Sequence[Prefetcher] = (),
        ocp: Optional[OffChipPredictor] = None,
        dram: Optional[MainMemory] = None,
        llc: Optional[Cache] = None,
        stats: Optional[SimStats] = None,
    ) -> None:
        self.params = params
        self.l1d = Cache(params.l1d)
        self.l2c = Cache(params.l2c)
        self.llc = llc if llc is not None else Cache(params.llc)
        self.dram = dram if dram is not None else MainMemory(params.dram)
        self.stats = stats if stats is not None else SimStats()
        self.ocp = ocp
        self.prefetchers = list(prefetchers)
        for pf in self.prefetchers:
            if pf.level not in ("l1d", "l2c"):
                raise ValueError(f"{pf.name}: unsupported level {pf.level!r}")
        #: Optional per-request prefetch drop filter (used by TLP).
        self.prefetch_filter: Optional[PrefetchFilter] = None
        #: Recently prefetch-evicted LLC victims, for pollution accounting.
        self._pollution_victims: dict = {}
        self._pollution_clock = 0
        #: Observers notified of microarchitectural events (Athena trackers).
        self.observers: List = []

    # ------------------------------------------------------------------ events

    def _notify(self, method: str, *args) -> None:
        for obs in self.observers:
            getattr(obs, method, _ignore)(*args)

    # ------------------------------------------------------------------ demand

    def load(self, pc: int, addr: int, now: float) -> "LoadResult":
        """Perform a demand load; returns its latency and outcome."""
        line = addr >> LINE_SHIFT
        byte_offset = addr & ((1 << LINE_SHIFT) - 1)
        p = self.params
        stats = self.stats

        # 1. Off-chip prediction races the cache lookup.
        ocp_predicted = False
        ocp_completion = None
        if self.ocp is not None:
            predicted = self.ocp.predict(pc, line, byte_offset)
            if predicted:
                ocp_predicted = True
                stats.ocp_predictions += 1
                issue_time = now + p.ocp_issue_latency
                res = self.dram.access(issue_time, line, MainMemory.OCP)
                stats.dram_ocp_requests += 1
                ocp_completion = res.completion_time
                self._notify("on_ocp_request", line)

        # 2. Walk the hierarchy.
        went_offchip = False
        hit_l1 = self.l1d.lookup(line, pc)
        if hit_l1 is not None:
            stats.l1d_hits += 1
            latency = max(float(p.l1d.latency), hit_l1.ready_time - now)
            if hit_l1.prefetched:
                self._credit_useful_prefetch(hit_l1, line, "l1d")
            self._train_l1_prefetchers(pc, line, hit=True, now=now)
        else:
            stats.l1d_misses += 1
            self._train_l1_prefetchers(pc, line, hit=False, now=now)
            hit_l2 = self.l2c.lookup(line, pc)
            if hit_l2 is not None:
                stats.l2c_hits += 1
                latency = max(
                    float(p.l1d.latency + p.l2c.latency),
                    hit_l2.ready_time - now,
                )
                self._fill_level(self.l1d, line, pc,
                                 ready_time=hit_l2.ready_time)
                if hit_l2.prefetched:
                    self._credit_useful_prefetch(hit_l2, line, "l2c")
                self._train_l2_prefetchers(pc, line, hit=True, now=now)
            else:
                stats.l2c_misses += 1
                self._train_l2_prefetchers(pc, line, hit=False, now=now)
                hit_llc = self.llc.lookup(line, pc)
                if hit_llc is not None:
                    stats.llc_hits += 1
                    latency = max(
                        float(p.l1d.latency + p.l2c.latency + p.llc.latency),
                        hit_llc.ready_time - now,
                    )
                    self._fill_level(self.l2c, line, pc,
                                     ready_time=hit_llc.ready_time)
                    self._fill_level(self.l1d, line, pc,
                                     ready_time=hit_llc.ready_time)
                    if hit_llc.prefetched:
                        self._credit_useful_prefetch(hit_llc, line, "llc")
                else:
                    went_offchip = True
                    latency = self._serve_offchip_load(
                        pc, line, now, ocp_predicted, ocp_completion
                    )

        # 3. Resolve OCP training and accuracy accounting.
        if self.ocp is not None:
            self.ocp.train(pc, line, went_offchip, byte_offset)
            if ocp_predicted and went_offchip:
                stats.ocp_correct += 1
                self._notify("on_ocp_correct", line)

        self._notify("on_demand_load", pc, line, went_offchip)
        return LoadResult(latency=latency, went_offchip=went_offchip)

    def _serve_offchip_load(
        self,
        pc: int,
        line: int,
        now: float,
        ocp_predicted: bool,
        ocp_completion: Optional[float],
    ) -> float:
        """Fetch a demand miss from DRAM; OCP hit short-circuits the lookup."""
        p = self.params
        onchip_lookup = p.l1d.latency + p.l2c.latency + p.llc.latency
        if ocp_predicted and ocp_completion is not None:
            # The speculative request *is* the fetch: data arrives when the
            # early DRAM access completes (but the demand still pays at
            # least its L1 lookup before the miss is known to the core).
            latency = max(ocp_completion - now, float(p.l1d.latency))
            saved = (now + onchip_lookup) - (now + p.ocp_issue_latency)
            self.stats.ocp_saved_cycles += max(0.0, saved)
        else:
            issue_time = now + onchip_lookup
            res = self.dram.access(issue_time, line, MainMemory.DEMAND)
            self.stats.dram_demand_requests += 1
            latency = res.completion_time - now
        self.stats.llc_miss_latency_sum += latency
        self.stats.llc_misses += 1
        if line in self._pollution_victims:
            self.stats.pollution_misses += 1
            del self._pollution_victims[line]
            self._notify("on_pollution_miss", line)
        self._notify("on_llc_demand_miss", line)

        arrival = now + latency
        self._fill_level(self.llc, line, pc, from_dram=True,
                         ready_time=arrival)
        self._fill_level(self.l2c, line, pc, from_dram=True,
                         ready_time=arrival)
        self._fill_level(self.l1d, line, pc, from_dram=True,
                         ready_time=arrival)
        if self.ocp is not None:
            self.ocp.on_fill(line)
        return latency

    def store(self, pc: int, addr: int, now: float) -> float:
        """Perform a store.  Write-allocate; latency hidden by the SQ.

        The store's fill traffic is charged to DRAM (it contends with
        everything else) but the returned latency is a single cycle because
        stores retire through the store queue off the critical path.
        """
        line = addr >> LINE_SHIFT
        hit = self.l1d.lookup(line, pc, is_write=True)
        if hit is None:
            if self.l2c.probe(line):
                self.l2c.lookup(line, pc)
            elif self.llc.probe(line):
                self.llc.lookup(line, pc)
                self._fill_level(self.l2c, line, pc)
            else:
                self.dram.access(now, line, MainMemory.DEMAND)
                self.stats.dram_demand_requests += 1
                self._fill_level(self.llc, line, pc, from_dram=True)
                self._fill_level(self.l2c, line, pc, from_dram=True)
                if self.ocp is not None:
                    self.ocp.on_fill(line)
            self._fill_level(self.l1d, line, pc, dirty=True)
        return 1.0

    # ------------------------------------------------------------------ fills

    def _fill_level(
        self,
        cache: Cache,
        line: int,
        pc: int,
        is_prefetch: bool = False,
        dirty: bool = False,
        from_dram: bool = False,
        ready_time: float = 0.0,
    ) -> None:
        result = cache.fill(
            line, pc, is_prefetch=is_prefetch, dirty=dirty,
            from_dram=from_dram, ready_time=ready_time,
        )
        evicted = result.evicted
        if evicted is None:
            return
        if cache is self.llc:
            if evicted.dirty:
                # Writebacks consume bus bandwidth at an approximate time.
                self.dram.access(
                    self.dram.next_bus_free, evicted.line_addr,
                    MainMemory.WRITEBACK,
                )
                self.stats.dram_writeback_requests += 1
            if self.ocp is not None:
                self.ocp.on_eviction(evicted.line_addr)
            if evicted.evicted_for_prefetch:
                self._record_pollution_victim(evicted.line_addr)
                self._notify("on_prefetch_eviction", evicted.line_addr)
        else:
            # Non-LLC evictions write back into the next level.
            if evicted.dirty:
                nxt = self.l2c if cache is self.l1d else self.llc
                nxt.fill(evicted.line_addr, pc, dirty=True)
        if evicted.prefetched and evicted.line_addr != line:
            # Prefetched line evicted without ever being demanded.
            if cache.params.name in ("L1D", "L2C"):
                self._account_dead_prefetch(evicted)

    def _account_dead_prefetch(self, evicted) -> None:
        if evicted.reused:
            return
        # The line's prefetch bit survived until eviction => never used.
        if getattr(evicted, "filled_from_dram", False):
            self.stats.prefetch_fills_offchip_useless += 1

    def _record_pollution_victim(self, line_addr: int) -> None:
        self._pollution_clock += 1
        self._pollution_victims[line_addr] = self._pollution_clock
        if len(self._pollution_victims) > _POLLUTION_WINDOW:
            oldest = min(self._pollution_victims, key=self._pollution_victims.get)
            del self._pollution_victims[oldest]

    def _credit_useful_prefetch(self, cache_line, line: int,
                                level: str = "llc") -> None:
        cache_line.prefetched = False
        self.stats.prefetches_useful += 1
        if cache_line.filled_from_dram:
            self.stats.prefetches_useful_offchip += 1
            if level == "l1d":
                self.stats.prefetches_useful_offchip_l1d += 1
            elif level == "l2c":
                self.stats.prefetches_useful_offchip_l2c += 1
        for pf in self.prefetchers:
            pf.on_prefetch_useful(line)
        self._notify("on_prefetch_useful", line)

    # ------------------------------------------------------------------ prefetch

    def _train_l1_prefetchers(self, pc: int, line: int, hit: bool, now: float) -> None:
        for pf in self.prefetchers:
            if pf.level == "l1d":
                self._issue_prefetches(pf, pf.observe(pc, line, hit), pc, now)

    def _train_l2_prefetchers(self, pc: int, line: int, hit: bool, now: float) -> None:
        for pf in self.prefetchers:
            if pf.level == "l2c":
                self._issue_prefetches(pf, pf.observe(pc, line, hit), pc, now)

    def _issue_prefetches(
        self, pf: Prefetcher, candidates: List[int], pc: int, now: float
    ) -> None:
        for cand in candidates:
            if cand < 0:
                continue
            if self.prefetch_filter is not None and not self.prefetch_filter(
                pc, cand, pf.level
            ):
                continue
            self._issue_one_prefetch(pf, cand, pc, now)

    def _issue_one_prefetch(
        self, pf: Prefetcher, line: int, pc: int, now: float
    ) -> None:
        target = self.l1d if pf.level == "l1d" else self.l2c
        if target.probe(line):
            return
        self.stats.prefetches_issued += 1
        self._notify("on_prefetch_issued", line)

        from_dram = False
        arrival = now
        if pf.level == "l1d" and self.l2c.probe(line):
            pass  # pulled up from L2, no off-chip traffic
        elif self.llc.probe(line):
            pass  # pulled up from LLC, no off-chip traffic
        else:
            result = self.dram.access(now, line, MainMemory.PREFETCH)
            self.stats.dram_prefetch_requests += 1
            from_dram = True
            arrival = result.completion_time
            self.stats.prefetch_fills_offchip += 1
            if pf.level == "l1d":
                self.stats.prefetch_fills_offchip_l1d += 1
            else:
                self.stats.prefetch_fills_offchip_l2c += 1
            self._fill_level(
                self.llc, line, pc, is_prefetch=True, from_dram=True,
                ready_time=arrival,
            )
            if self.ocp is not None:
                self.ocp.on_fill(line)
        if pf.level == "l1d":
            self._fill_level(self.l1d, line, pc, is_prefetch=True,
                             from_dram=from_dram, ready_time=arrival)
        else:
            self._fill_level(self.l2c, line, pc, is_prefetch=True,
                             from_dram=from_dram, ready_time=arrival)
        pf.on_prefetch_filled(line, from_dram)

    # ------------------------------------------------------------------ control

    def set_prefetchers_enabled(self, flags: Sequence[bool]) -> None:
        if len(flags) != len(self.prefetchers):
            raise ValueError(
                f"expected {len(self.prefetchers)} flags, got {len(flags)}"
            )
        for pf, flag in zip(self.prefetchers, flags):
            pf.enabled = bool(flag)

    def set_ocp_enabled(self, flag: bool) -> None:
        if self.ocp is not None:
            self.ocp.enabled = bool(flag)

    def set_degree_fraction(self, fraction: float) -> None:
        for pf in self.prefetchers:
            pf.set_degree_fraction(fraction)


class LoadResult:
    """Latency and outcome of one demand load."""

    __slots__ = ("latency", "went_offchip")

    def __init__(self, latency: float, went_offchip: bool) -> None:
        self.latency = latency
        self.went_offchip = went_offchip


def _ignore(*_args) -> None:
    """Default no-op observer method."""
