"""Off-chip predictors evaluated by the paper (POPET, HMP, TTP)."""

from .base import OffChipPredictor
from .hmp import HmpPredictor
from .popet import PopetPredictor
from .ttp import TtpPredictor

#: registry keyed by the names used in experiment configurations.
OCPS = {
    "popet": PopetPredictor,
    "hmp": HmpPredictor,
    "ttp": TtpPredictor,
}


def make_ocp(name: str) -> OffChipPredictor:
    """Instantiate an off-chip predictor by registry name."""
    try:
        return OCPS[name]()
    except KeyError:
        raise ValueError(
            f"unknown OCP {name!r}; valid: {sorted(OCPS)}"
        ) from None


__all__ = [
    "HmpPredictor",
    "OCPS",
    "OffChipPredictor",
    "PopetPredictor",
    "TtpPredictor",
    "make_ocp",
]
