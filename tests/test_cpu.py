"""Tests for the ROB-limited analytical core timing model."""

import pytest

from repro.sim.cpu import CoreModel
from repro.sim.params import CoreParams


def core(width=6, rob=512, penalty=17):
    return CoreModel(CoreParams(width=width, rob_size=rob,
                                mispredict_penalty=penalty))


class TestThroughput:
    def test_ideal_ipc_equals_width(self):
        c = core(width=4)
        for _ in range(4000):
            c.step()
        assert c.retired / c.cycles == pytest.approx(4.0, rel=0.01)

    def test_commit_is_in_order_and_monotone(self):
        c = core()
        commits = [c.step(latency=(i % 7) + 1) for i in range(100)]
        assert commits == sorted(commits)

    def test_single_long_latency_hidden_by_window(self):
        """One slow load among many independent instructions barely moves
        the clock (the ROB covers it)."""
        fast = core()
        for _ in range(1000):
            fast.step()
        slow = core()
        for i in range(1000):
            slow.step(latency=200.0 if i == 100 else 1.0, is_load=(i == 100))
        assert slow.cycles < fast.cycles + 210


class TestMemoryLevelParallelism:
    def test_independent_misses_overlap(self):
        """N independent 200-cycle loads inside the window cost ~200
        cycles total, not N * 200."""
        c = core(width=4, rob=512)
        for _ in range(64):
            c.step(latency=200.0, is_load=True)
        assert c.cycles < 300.0

    def test_dependent_misses_serialise(self):
        """Address-dependent loads cannot overlap: the pointer-chasing
        regime where OCP shines (paper §2.1.1)."""
        c = core(width=4, rob=512)
        for _ in range(16):
            c.step(latency=200.0, is_load=True, dependent_load=True)
        assert c.cycles > 16 * 200.0 * 0.95

    def test_rob_limits_overlap(self):
        """With a tiny ROB, misses beyond the window serialise."""
        small = core(width=4, rob=4)
        for _ in range(64):
            small.step(latency=200.0, is_load=True)
        big = core(width=4, rob=512)
        for _ in range(64):
            big.step(latency=200.0, is_load=True)
        assert small.cycles > 3 * big.cycles


class TestBranches:
    def test_mispredict_adds_penalty(self):
        clean = core()
        for _ in range(100):
            clean.step()
        dirty = core()
        for i in range(100):
            dirty.step(mispredicted_branch=(i == 50))
        assert dirty.cycles >= clean.cycles + 16

    def test_many_mispredicts_dominate(self):
        c = core(penalty=20)
        for _ in range(100):
            c.step(mispredicted_branch=True)
        # Each branch costs ~ penalty + resolution.
        assert c.cycles > 100 * 20 * 0.9


class TestTwoPhaseApi:
    def test_begin_returns_issue_time(self):
        c = core()
        t0 = c.begin()
        assert t0 == 0.0
        c.finish(latency=10.0, is_load=True)
        t1 = c.begin(dependent_load=True)
        assert t1 == pytest.approx(10.0)

    def test_finish_returns_commit_time(self):
        c = core()
        c.begin()
        commit = c.finish(latency=5.0)
        assert commit == pytest.approx(5.0)

    def test_retired_counter(self):
        c = core()
        for _ in range(10):
            c.step()
        assert c.retired == 10

    def test_step_equivalent_to_begin_finish(self):
        a = core()
        b = core()
        for i in range(50):
            latency = (i % 5) + 1.0
            a.step(latency=latency, is_load=True)
            b.begin()
            b.finish(latency=latency, is_load=True)
        assert a.cycles == pytest.approx(b.cycles)
