"""Typed, declarative experiment specs with serialization round-trips.

A *spec* is the programmatic front door to the execution backend: a
plain dataclass that names components by their registry names, carries
schema-validated parameters, and lowers onto the engine's
content-addressed requests through the same
:class:`~repro.experiments.runner.ExperimentContext` planning code the
CLI uses — so ``repro exp run spec.toml`` and the equivalent
``repro sweep`` invocation produce *identical* content-hash keys and
hit the same store entries.

Five spec levels:

* :class:`RunSpec` — one workload × design × policy speedup cell,
* :class:`MixSpec` — one multi-core mix,
* :class:`SweepSpec` — a workloads × designs × policies cross-product,
* :class:`FigureSpec` — named paper figures,
* :class:`ExperimentSpec` — a whole experiment file combining the above.

Every spec round-trips ``to_dict``/``from_dict`` and (at the experiment
level) JSON and TOML, and has a stable ``content_key()`` content-hash
identity.  Validation happens eagerly at construction against the
unified :mod:`repro.api.registry`, so a typo'd policy name or parameter
fails before any simulation starts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.config import AthenaConfig
from ..workloads.suites import SCALES, WorkloadSpec, find_workload
from .params import normalize_params
from .registry import registry

#: bump when the spec layout changes incompatibly; mixed into
#: :func:`ExperimentSpec.content_key`.
SPEC_SCHEMA = 1

#: cache-design variants a RunSpec/MixSpec may select.
VARIANTS = ("full", "baseline", "ocp-only", "pf-only")


class SpecError(ValueError):
    """A spec failed validation (unknown component, bad parameter...)."""


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------

def _jsonable(value):
    """Canonicalize a value for serialization (tuples→lists,
    dataclasses→tables).  Params are already canonicalized at spec
    construction; this covers post-construction mutation too."""
    from .params import canonical_value

    return canonical_value(value)


def _check_fields(payload: dict, known: Sequence[str], what: str) -> None:
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise SpecError(
            f"unknown {what} fields {unknown}; valid: {sorted(known)}"
        )


def _resolve_workload(name: str) -> WorkloadSpec:
    """Registry name or ``trace://`` source → workload spec.

    External-source failures (missing file, unknown adapter, changed
    content) surface as :exc:`SpecError` just like unknown registry
    names, so spec validation reports both the same way.
    """
    try:
        return find_workload(name)
    except KeyError as exc:
        raise SpecError(str(exc.args[0])) from None
    except ValueError as exc:  # TraceImportError from trace:// sources
        raise SpecError(str(exc)) from None


def _registry_validate(kind: str, name: str, params: dict) -> None:
    """Registry validation, re-raised as SpecError for spec callers."""
    try:
        registry.validate(kind, name, params)
    except ValueError as exc:
        raise SpecError(str(exc)) from None


def _apply_variant(design, variant: str):
    if variant == "baseline":
        return design.without_mechanisms()
    if variant == "ocp-only":
        return design.only_ocp()
    if variant == "pf-only":
        return design.only_prefetchers()
    return design


def _overrides(spec) -> dict:
    """plan_* keyword overrides shared by Run/Mix specs."""
    return {
        "trace_length": spec.trace_length,
        "epoch_length": spec.epoch_length,
        "warmup_fraction": spec.warmup_fraction,
    }


def _validate_lengths(spec, what: str) -> None:
    for key in ("trace_length", "epoch_length"):
        value = getattr(spec, key)
        if value is None:
            continue
        if not isinstance(value, int) or isinstance(value, bool) \
                or value <= 0:
            raise SpecError(
                f"{what} {key} must be a positive integer, got {value!r}"
            )
    warmup = spec.warmup_fraction
    if warmup is not None:
        if not isinstance(warmup, (int, float)) \
                or isinstance(warmup, bool) or not 0.0 <= warmup < 1.0:
            raise SpecError(
                f"{what} warmup_fraction must be a number in [0, 1), "
                f"got {warmup!r}"
            )


def _common_post_init(spec, what: str) -> None:
    """Design/policy/variant/length validation shared by Run/Mix specs.

    Both spec kinds carry the same component-selection fields; keeping
    one normalization path means their serialized forms (and therefore
    experiment content keys) can never drift apart.
    """
    spec.design = spec.design.lower()
    try:
        spec.design_params = normalize_params(
            spec.design_params, option="design_params")
        spec.policy_params = normalize_params(
            spec.policy_params, option="policy_params")
    except ValueError as exc:
        raise SpecError(str(exc)) from None
    if spec.variant not in VARIANTS:
        raise SpecError(
            f"unknown variant {spec.variant!r}; valid: {VARIANTS}"
        )
    _registry_validate("design", spec.design, spec.design_params)
    _registry_validate("policy", spec.policy, spec.policy_params)
    _validate_lengths(spec, what)


def _common_to_dict(spec) -> Dict[str, object]:
    """Default-omitting serialization of the shared Run/Mix fields."""
    out: Dict[str, object] = {}
    if spec.design != "cd1":
        out["design"] = spec.design
    if spec.policy != "none":
        out["policy"] = spec.policy
    if spec.variant != "full":
        out["variant"] = spec.variant
    if spec.design_params:
        out["design_params"] = _jsonable(spec.design_params)
    if spec.policy_params:
        out["policy_params"] = _jsonable(spec.policy_params)
    for key in ("trace_length", "epoch_length", "warmup_fraction"):
        value = getattr(spec, key)
        if value is not None:
            out[key] = value
    return out


def _to_variant_design(spec):
    design = registry.create("design", spec.design, **spec.design_params)
    return _apply_variant(design, spec.variant)


def _policy_options(spec) -> Tuple[Tuple[str, object], ...]:
    """Engine ``policy_options`` for a Run/Mix spec.

    Athena carries its configuration as ``athena_config`` on the
    request instead, so its options tuple stays empty — one rule, used
    by both spec kinds, so run and mix content keys cannot drift.
    """
    if spec.policy == "athena":
        return ()
    return tuple(sorted(spec.policy_params.items()))


# ---------------------------------------------------------------------------
# RunSpec
# ---------------------------------------------------------------------------

@dataclass
class RunSpec:
    """One workload × design × policy speedup measurement.

    ``workload`` is a registry name (``ligra.BFS.0``) or an external
    ``trace://path[?adapter=…]`` source (resolved and validated — file
    present, adapter known — at construction; see ``docs/traces.md``).
    Lowered by :meth:`plan` into the baseline request plus the policy
    run(s) — for athena, one per averaged agent seed — exactly as
    :meth:`ExperimentContext.plan_speedup` builds them.
    """

    workload: str
    design: str = "cd1"
    policy: str = "none"
    variant: str = "full"
    design_params: Dict[str, object] = field(default_factory=dict)
    policy_params: Dict[str, object] = field(default_factory=dict)
    trace_length: Optional[int] = None
    epoch_length: Optional[int] = None
    warmup_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        _resolve_workload(self.workload)
        _common_post_init(self, "run")

    # -- lowering ----------------------------------------------------------

    def to_design(self):
        return _to_variant_design(self)

    def athena_config(self) -> Optional[AthenaConfig]:
        if self.policy == "athena" and self.policy_params:
            from .registry import build_athena_config

            return build_athena_config(self.policy_params)
        return None

    def policy_options(self) -> Tuple[Tuple[str, object], ...]:
        return _policy_options(self)

    def plan(self, ctx) -> list:
        """Baseline + policy requests via the shared planner."""
        return ctx.plan_speedup(
            _resolve_workload(self.workload),
            self.to_design(),
            self.policy,
            self.athena_config(),
            policy_options=self.policy_options(),
            **_overrides(self),
        )

    # -- serialization -----------------------------------------------------

    _FIELDS = ("workload", "design", "policy", "variant", "design_params",
               "policy_params", "trace_length", "epoch_length",
               "warmup_fraction")

    def to_dict(self) -> dict:
        return {"workload": self.workload, **_common_to_dict(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "RunSpec":
        _check_fields(payload, cls._FIELDS, "run spec")
        if "workload" not in payload:
            raise SpecError("run spec requires a 'workload'")
        return cls(**payload)


# ---------------------------------------------------------------------------
# MixSpec
# ---------------------------------------------------------------------------

@dataclass
class MixSpec:
    """One multi-core mix: N workloads co-running on one design.

    Each entry of ``workloads`` accepts the same spellings as
    :class:`RunSpec.workload` — registry names and ``trace://``
    sources can co-run in one mix.
    """

    workloads: List[str]
    design: str = "cd1"
    policy: str = "none"
    variant: str = "full"
    name: str = ""
    design_params: Dict[str, object] = field(default_factory=dict)
    policy_params: Dict[str, object] = field(default_factory=dict)
    trace_length: Optional[int] = None
    epoch_length: Optional[int] = None
    warmup_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        self.workloads = list(self.workloads)
        if not self.workloads:
            raise SpecError("mix spec needs at least one workload")
        for name in self.workloads:
            _resolve_workload(name)
        _common_post_init(self, "mix")
        if self.policy == "athena" and self.policy_params:
            raise SpecError(
                "mix specs do not support athena policy_params yet; "
                "athena mixes run the default configuration"
            )
        if not self.name:
            self.name = f"mix{len(self.workloads)}c.custom"

    def to_design(self):
        return _to_variant_design(self)

    def plan(self, ctx):
        from ..workloads.mixes import WorkloadMix

        mix = WorkloadMix(
            name=self.name,
            category="custom",
            workloads=tuple(_resolve_workload(n) for n in self.workloads),
        )
        return ctx.plan_mix(
            mix, self.to_design(), self.policy,
            policy_options=_policy_options(self),
            **_overrides(self),
        )

    _FIELDS = ("workloads", "design", "policy", "variant", "name",
               "design_params", "policy_params", "trace_length",
               "epoch_length", "warmup_fraction")

    def to_dict(self) -> dict:
        out: Dict[str, object] = {"workloads": list(self.workloads)}
        if self.name != f"mix{len(self.workloads)}c.custom":
            out["name"] = self.name
        out.update(_common_to_dict(self))
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "MixSpec":
        _check_fields(payload, cls._FIELDS, "mix spec")
        if "workloads" not in payload:
            raise SpecError("mix spec requires 'workloads'")
        return cls(**payload)


# ---------------------------------------------------------------------------
# SweepSpec
# ---------------------------------------------------------------------------

@dataclass
class SweepSpec:
    """A workloads × designs × policies speedup cross-product.

    ``workloads`` is either an explicit name list or the string
    ``"pool"``/``"pool:N"`` for the scale's representative subset —
    the same spellings ``repro sweep --workloads`` accepts.
    """

    workloads: Union[str, List[str]] = "pool"
    designs: List[str] = field(default_factory=lambda: ["cd1"])
    policies: List[str] = field(default_factory=lambda: ["none", "athena"])

    def __post_init__(self) -> None:
        if isinstance(self.workloads, str):
            name = self.workloads
            if name != "pool" and not name.startswith("pool:"):
                raise SpecError(
                    f"sweep workloads must be a list of names or "
                    f"'pool'/'pool:N', got {name!r}"
                )
            if name.startswith("pool:"):
                try:
                    int(name.partition(":")[2])
                except ValueError:
                    raise SpecError(f"bad pool size in {name!r}") from None
        else:
            self.workloads = list(self.workloads)
            if not self.workloads:
                raise SpecError("sweep needs at least one workload")
            for name in self.workloads:
                _resolve_workload(name)
        self.designs = [d.lower() for d in self.designs]
        self.policies = list(self.policies)
        if not self.designs or not self.policies:
            raise SpecError("sweep needs at least one design and one policy")
        # membership via the registry (not names()) so legacy-dict
        # registrations resolve through the fallback hook too.
        bad = [p for p in self.policies if ("policy", p) not in registry]
        if bad:
            raise SpecError(
                f"unknown policies {bad}; valid: {registry.names('policy')}"
            )
        for name in self.designs:
            _registry_validate("design", name, {})

    def resolve_workloads(self, ctx) -> List[WorkloadSpec]:
        if isinstance(self.workloads, str):
            _, sep, count = self.workloads.partition(":")
            return list(ctx.workload_pool(int(count) if sep else None))
        return [_resolve_workload(name) for name in self.workloads]

    def columns(self) -> List[Tuple[str, str, str]]:
        """(label, design, policy) for every sweep column."""
        return [
            (f"{design}/{policy}", design, policy)
            for design in self.designs for policy in self.policies
        ]

    def plan(self, ctx, workloads=None, designs=None) -> list:
        """The full request cross-product.

        ``workloads``/``designs`` accept pre-resolved values so
        :meth:`Session.sweep` plans through this one code path — the
        prefetch keys and the per-cell evaluation keys cannot drift.
        """
        if workloads is None:
            workloads = self.resolve_workloads(ctx)
        if designs is None:
            designs = self.resolve_designs()
        return [
            request
            for spec in workloads
            for _, dname, policy in self.columns()
            for request in ctx.plan_speedup(spec, designs[dname], policy)
        ]

    def resolve_designs(self) -> Dict[str, object]:
        return {
            name: registry.create("design", name) for name in self.designs
        }

    _FIELDS = ("workloads", "designs", "policies")

    def to_dict(self) -> dict:
        out: Dict[str, object] = {}
        if self.workloads != "pool":
            out["workloads"] = self.workloads if isinstance(
                self.workloads, str) else list(self.workloads)
        if self.designs != ["cd1"]:
            out["designs"] = list(self.designs)
        if self.policies != ["none", "athena"]:
            out["policies"] = list(self.policies)
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepSpec":
        _check_fields(payload, cls._FIELDS, "sweep spec")
        return cls(**payload)


# ---------------------------------------------------------------------------
# FigureSpec
# ---------------------------------------------------------------------------

@dataclass
class FigureSpec:
    """Named paper figures to regenerate (or every one)."""

    figures: List[str] = field(default_factory=list)
    all: bool = False

    def __post_init__(self) -> None:
        from ..experiments.figures import FIGURES

        self.figures = list(self.figures)
        if not self.all and not self.figures:
            raise SpecError(
                "no figures requested (name some or set all=true)"
            )
        unknown = [fid for fid in self.figures if fid not in FIGURES]
        if unknown:
            known = ", ".join(sorted(FIGURES))
            raise SpecError(f"unknown figures {unknown}; known: {known}")

    def resolve(self) -> List[str]:
        from ..experiments.figures import FIGURES

        return list(FIGURES) if self.all else list(self.figures)

    _FIELDS = ("figures", "all")

    def to_dict(self) -> dict:
        out: Dict[str, object] = {}
        if self.figures:
            out["figures"] = list(self.figures)
        if self.all:
            out["all"] = True
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "FigureSpec":
        _check_fields(payload, cls._FIELDS, "figure spec")
        return cls(**payload)


# ---------------------------------------------------------------------------
# ExperimentSpec
# ---------------------------------------------------------------------------

@dataclass
class ExperimentSpec:
    """A whole experiment: runs + mixes + sweeps + figures in one file."""

    name: str = "experiment"
    scale: Optional[str] = None
    runs: List[RunSpec] = field(default_factory=list)
    mixes: List[MixSpec] = field(default_factory=list)
    sweeps: List[SweepSpec] = field(default_factory=list)
    figures: List[FigureSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.scale is not None and self.scale not in SCALES:
            raise SpecError(
                f"unknown scale {self.scale!r}; valid: {sorted(SCALES)}"
            )
        if not (self.runs or self.mixes or self.sweeps or self.figures):
            raise SpecError(
                "experiment spec is empty: add runs, mixes, sweeps, "
                "or figures"
            )

    def sections(self) -> List[Tuple[str, object]]:
        """(kind, spec) pairs in execution order."""
        return (
            [("sweep", s) for s in self.sweeps]
            + [("run", r) for r in self.runs]
            + [("mix", m) for m in self.mixes]
            + [("figure", f) for f in self.figures]
        )

    # -- serialization -----------------------------------------------------

    _FIELDS = ("name", "scale", "runs", "mixes", "sweeps", "figures")

    def to_dict(self) -> dict:
        out: Dict[str, object] = {"name": self.name}
        if self.scale is not None:
            out["scale"] = self.scale
        for key in ("runs", "mixes", "sweeps", "figures"):
            specs = getattr(self, key)
            if specs:
                out[key] = [spec.to_dict() for spec in specs]
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentSpec":
        if not isinstance(payload, dict):
            raise SpecError(
                f"experiment spec must be a table, got {type(payload).__name__}"
            )
        _check_fields(payload, cls._FIELDS, "experiment spec")
        sections = {
            "runs": RunSpec, "mixes": MixSpec,
            "sweeps": SweepSpec, "figures": FigureSpec,
        }
        kwargs: Dict[str, object] = {}
        for key, value in payload.items():
            if key in sections:
                if not isinstance(value, (list, tuple)):
                    raise SpecError(f"{key!r} must be an array of tables")
                kwargs[key] = [
                    sections[key].from_dict(item) for item in value
                ]
            else:
                kwargs[key] = value
        return cls(**kwargs)

    # -- JSON --------------------------------------------------------------

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid JSON spec: {exc}") from None
        return cls.from_dict(payload)

    # -- TOML --------------------------------------------------------------

    def to_toml(self) -> str:
        return _dumps_toml(self.to_dict())

    @classmethod
    def from_toml(cls, text: str) -> "ExperimentSpec":
        import tomllib

        try:
            payload = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise SpecError(f"invalid TOML spec: {exc}") from None
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path) -> "ExperimentSpec":
        """Load a spec file, dispatching on suffix (.toml/.json)."""
        import pathlib

        path = pathlib.Path(path)
        suffix = path.suffix.lower()
        if suffix not in (".toml", ".json"):
            raise SpecError(
                f"unsupported spec format {suffix or '(no extension)'} "
                f"for {path}; expected .toml or .json"
            )
        try:
            text = path.read_text()
        except OSError as exc:
            raise SpecError(f"cannot read spec {path}: {exc}") from None
        if suffix == ".json":
            return cls.from_json(text)
        return cls.from_toml(text)

    def save(self, path) -> None:
        import pathlib

        path = pathlib.Path(path)
        suffix = path.suffix.lower()
        if suffix not in (".toml", ".json"):
            raise SpecError(
                f"unsupported spec format {suffix or '(no extension)'} "
                f"for {path}; expected .toml or .json"
            )
        if suffix == ".json":
            path.write_text(self.to_json() + "\n")
        else:
            path.write_text(self.to_toml())

    # -- identity ----------------------------------------------------------

    def content_key(self) -> str:
        """Stable sha256 identity of the spec's canonical form."""
        blob = json.dumps(
            {"schema": SPEC_SCHEMA, "experiment": self.to_dict()},
            sort_keys=True, separators=(",", ":"), default=repr,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# minimal TOML emitter (stdlib has a reader, tomllib, but no writer)
# ---------------------------------------------------------------------------

def _toml_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    if isinstance(value, dict):
        body = ", ".join(
            f"{_toml_key(k)} = {_toml_value(v)}" for k, v in value.items()
        )
        return "{ " + body + " }" if body else "{}"
    raise SpecError(f"cannot serialize {type(value).__name__} to TOML")


def _toml_key(key: str) -> str:
    if key and all(c.isalnum() or c in "-_" for c in key):
        return key
    return json.dumps(key)


def _dumps_toml(payload: dict) -> str:
    """Serialize a spec dict: scalars first, then [[section]] tables."""
    lines: List[str] = []
    tables = {k: v for k, v in payload.items()
              if isinstance(v, list) and v and isinstance(v[0], dict)}
    for key, value in payload.items():
        if key in tables:
            continue
        lines.append(f"{_toml_key(key)} = {_toml_value(value)}")
    for section, items in tables.items():
        for item in items:
            lines.append("")
            lines.append(f"[[{_toml_key(section)}]]")
            for key, value in item.items():
                lines.append(f"{_toml_key(key)} = {_toml_value(value)}")
    return "\n".join(lines) + "\n"
