"""Unified component registry: policies, prefetchers, OCPs, cache
designs, workload suites, and trace adapters behind one
schema-validated factory.

Before this module each component family had its own shape — policies a
dict with bespoke athena handling, prefetchers a validation-free dict,
workload suites plain functions — so every consumer (CLI, spec files,
figure drivers) re-implemented name validation and error wording.  The
:class:`ComponentRegistry` centralizes all of it:

* ``create(kind, name, **params)`` validates the name *and* the keyword
  parameters against the component's schema, raising :exc:`ValueError`
  with a stable message on anything unknown,
* ``schema(kind, name)`` exposes per-component parameter schemas
  (derived from constructor signatures, or from
  :class:`~repro.core.config.AthenaConfig` for athena) so ``repro list``
  and spec validation share one source of truth, and
* decorator hooks (:func:`register_policy`, :func:`register_prefetcher`,
  …) let plugins — e.g. ``examples/custom_policy.py`` — add components
  without editing core files.  Registrations also update the legacy
  family dicts (``POLICY_FACTORIES``, ``PREFETCHERS``, ``OCPS``) so
  in-process consumers of those stay consistent.  Note that worker
  *processes* re-import the library from scratch: a plugin component is
  only visible to a parallel engine if its defining module is importable
  by workers; otherwise run with ``jobs=1``.

The legacy entry points (``make_policy``, ``make_prefetcher``,
``make_ocp``) now delegate here, which is what brought
``make_prefetcher`` to parity with ``make_policy`` (kwargs accepted,
``ValueError`` on unknown names/options).
"""

from __future__ import annotations

import dataclasses
import inspect
from dataclasses import MISSING, dataclass, fields as dataclass_fields
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: sentinel default for parameters that must be supplied by the caller.
REQUIRED = object()


@dataclass(frozen=True)
class ParamSpec:
    """One constructor parameter of a registered component."""

    name: str
    default: object = REQUIRED
    annotation: str = ""

    @property
    def required(self) -> bool:
        return self.default is REQUIRED

    def describe(self) -> str:
        if self.required:
            return f"{self.name}=<required>"
        return f"{self.name}={self.default!r}"


def _annotation_name(annotation) -> str:
    if annotation is inspect.Parameter.empty:
        return ""
    if isinstance(annotation, str):
        return annotation
    return getattr(annotation, "__name__", str(annotation))


def schema_from_callable(factory: Callable) -> Dict[str, ParamSpec]:
    """Derive a parameter schema from a constructor/factory signature."""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        return {}
    out: Dict[str, ParamSpec] = {}
    for param in signature.parameters.values():
        if param.name == "self":
            continue
        if param.kind in (inspect.Parameter.VAR_POSITIONAL,
                          inspect.Parameter.VAR_KEYWORD):
            continue
        default = REQUIRED if param.default is inspect.Parameter.empty \
            else param.default
        out[param.name] = ParamSpec(
            name=param.name, default=default,
            annotation=_annotation_name(param.annotation),
        )
    return out


def _value_type_ok(value: object, default: object) -> bool:
    """Loose value check against the parameter's default type.

    Only scalar defaults are enforced (int promotes to float, lists
    stand in for tuple defaults); required, ``None``, and structured
    defaults accept anything — the constructor is their arbiter.
    """
    if default is REQUIRED or default is None or value is None:
        return True
    if isinstance(default, bool):
        return isinstance(value, bool)
    if isinstance(default, float):
        return isinstance(value, (int, float)) \
            and not isinstance(value, bool)
    if isinstance(default, int):
        return isinstance(value, int) and not isinstance(value, bool)
    if isinstance(default, str):
        return isinstance(value, str)
    if isinstance(default, tuple):
        return isinstance(value, (list, tuple))
    return True


def _accepts_any_keyword(factory: Callable) -> bool:
    """Whether the factory signature carries ``**kwargs``."""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        return True  # unintrospectable: don't reject anything
    return any(
        param.kind is inspect.Parameter.VAR_KEYWORD
        for param in signature.parameters.values()
    )


def _is_dataclass_default(default: object) -> bool:
    return dataclasses.is_dataclass(default) \
        and not isinstance(default, type)


def _coerce_dataclass_value(kind, name, key, value, default):
    """Rebuild a dataclass-typed parameter from its serialized table.

    Spec files carry config objects (HpacThresholds, RewardWeights, …)
    as plain tables; every component gets the same dict→dataclass
    reconstruction athena's config enjoys, and a bad table fails here —
    eagerly — rather than as an AttributeError inside a pool worker.
    """
    try:
        return type(default)(**value)
    except TypeError as exc:
        raise ValueError(
            f"invalid value for option {key!r} of {kind} {name!r}: {exc}"
        ) from None


def schema_from_dataclass(cls) -> Dict[str, ParamSpec]:
    """Derive a schema from a (config) dataclass's fields."""
    out: Dict[str, ParamSpec] = {}
    for f in dataclass_fields(cls):
        if f.default is not MISSING:
            default: object = f.default
        elif f.default_factory is not MISSING:  # type: ignore[misc]
            default = f.default_factory()  # type: ignore[misc]
        else:
            default = REQUIRED
        out[f.name] = ParamSpec(
            name=f.name, default=default,
            annotation=_annotation_name(f.type),
        )
    return out


@dataclass
class Component:
    """One registered component: factory + parameter schema."""

    kind: str
    name: str
    factory: Callable
    schema: Dict[str, ParamSpec]
    description: str = ""
    #: a ``**kwargs`` factory accepts option names beyond its schema,
    #: so unknown-name rejection must be skipped for it.
    open_options: bool = False
    #: overrides the default unknown-option message (athena/none keep
    #: their historical, test-pinned wording).
    options_error: Optional[Callable[[List[str]], str]] = None

    def unknown_options_message(self, bad: Sequence[str]) -> str:
        if self.options_error is not None:
            return self.options_error(sorted(bad))
        return (
            f"unsupported options {sorted(bad)} for {self.kind} "
            f"{self.name!r}; valid: {sorted(self.schema) or '(none)'}"
        )


class ComponentRegistry:
    """Name → factory registry across every component kind.

    Kinds in the default registry: ``policy``, ``prefetcher``, ``ocp``,
    ``design``, ``suite``, and ``trace_adapter``.  Each component pairs
    a factory with a parameter schema (usually derived from its
    constructor signature); :meth:`validate` checks names and option
    values *without* instantiating, :meth:`create` validates then
    builds, and :meth:`schema` feeds ``repro list`` and spec-file
    validation from the same source of truth.
    """

    def __init__(self) -> None:
        self._components: Dict[Tuple[str, str], Component] = {}
        #: per-kind hooks that surface legacy-dict entries added behind
        #: the registry's back (tests and older plugins mutate
        #: POLICY_FACTORIES & co. directly).
        self._fallbacks: Dict[str, Callable[[str], Optional[Component]]] = {}
        self._fallback_names: Dict[str, Callable[[], Iterable[str]]] = {}

    # -- registration ------------------------------------------------------

    def register(
        self,
        kind: str,
        name: str,
        factory: Callable,
        schema: Optional[Dict[str, ParamSpec]] = None,
        description: str = "",
        options_error: Optional[Callable[[List[str]], str]] = None,
        replace: bool = False,
    ) -> Component:
        key = (kind, name)
        if key in self._components and not replace:
            raise ValueError(f"{kind} {name!r} is already registered")
        component = Component(
            kind=kind,
            name=name,
            factory=factory,
            schema=schema_from_callable(factory) if schema is None else schema,
            description=description,
            # an explicit schema is authoritative (closed); a derived
            # one stays open when the factory takes **kwargs
            open_options=(schema is None
                          and _accepts_any_keyword(factory)),
            options_error=options_error,
        )
        self._components[key] = component
        return component

    def set_fallback(
        self,
        kind: str,
        hook: Callable[[str], Optional[Component]],
        names: Optional[Callable[[], Iterable[str]]] = None,
    ) -> None:
        """Install a legacy-dict resolver for ``kind``.

        ``names`` enumerates the same source so listings and
        unknown-name error messages include everything that would
        actually resolve.
        """
        self._fallbacks[kind] = hook
        if names is not None:
            self._fallback_names[kind] = names

    # -- lookup ------------------------------------------------------------

    def kinds(self) -> List[str]:
        return sorted({kind for kind, _ in self._components})

    def names(self, kind: str) -> List[str]:
        out = {name for k, name in self._components if k == kind}
        names_hook = self._fallback_names.get(kind)
        if names_hook is not None:
            out.update(names_hook())
        return sorted(out)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        kind, name = key
        return self._lookup(kind, name) is not None

    def _lookup(self, kind: str, name: str) -> Optional[Component]:
        # Precedence: explicitly registered components (built-ins,
        # decorator plugins) win over legacy-dict state — mutating or
        # deleting a *built-in's* dict entry does not affect it.  The
        # fallback covers names known only to the legacy dict, and its
        # hits are NOT cached: the hook re-reads the dict every time,
        # so deleting such an entry (test teardown, monkeypatch) makes
        # the name unknown again immediately.
        component = self._components.get((kind, name))
        if component is None:
            hook = self._fallbacks.get(kind)
            if hook is not None:
                component = hook(name)
        return component

    def get(self, kind: str, name: str) -> Component:
        component = self._lookup(kind, name)
        if component is None:
            raise ValueError(
                f"unknown {kind} {name!r}; valid: {self.names(kind)}"
            )
        return component

    def schema(self, kind: str, name: str) -> Dict[str, ParamSpec]:
        return dict(self.get(kind, name).schema)

    def components(self, kind: str) -> List[Component]:
        return [self.get(kind, name) for name in self.names(kind)]

    # -- validation + construction ----------------------------------------

    def validate(self, kind: str, name: str, params: dict) -> Component:
        """Check ``name`` and ``params`` without instantiating anything.

        Validates option *names* against the schema and option *values*
        against each parameter's default type (ints are acceptable
        floats; ``None`` is always allowed for optional components), so
        a spec file's quoting mistake — ``discount = "0.98"`` — fails
        here, before any simulation starts, not inside a pool worker.
        """
        component = self.get(kind, name)
        if not component.open_options:
            bad = [key for key in params if key not in component.schema]
            if bad:
                raise ValueError(component.unknown_options_message(bad))
        missing = [
            key for key, spec in component.schema.items()
            if spec.required and key not in params
        ]
        if missing:
            raise ValueError(
                f"missing required options {missing} for {kind} {name!r}"
            )
        for key, value in params.items():
            if key not in component.schema:
                continue  # open-schema extra: the factory is the arbiter
            default = component.schema[key].default
            if _is_dataclass_default(default) and isinstance(value, dict):
                # eagerly prove the table reconstructs (discarded here,
                # rebuilt for real in create())
                _coerce_dataclass_value(kind, name, key, value, default)
            elif not _value_type_ok(value, default):
                raise ValueError(
                    f"invalid value for option {key!r} of {kind} "
                    f"{name!r}: expected {type(default).__name__}, got "
                    f"{type(value).__name__} ({value!r})"
                )
        return component

    def create(self, kind: str, name: str, **params):
        """Instantiate a component, validating name and parameters."""
        component = self.validate(kind, name, params)
        built = {}
        for key, value in params.items():
            default = component.schema[key].default \
                if key in component.schema else REQUIRED
            if _is_dataclass_default(default) and isinstance(value, dict):
                value = _coerce_dataclass_value(kind, name, key, value,
                                                default)
            built[key] = value
        try:
            return component.factory(**built)
        except TypeError:
            # Backstop for signatures inspect could not see through —
            # but only call-binding mismatches; a TypeError raised
            # *inside* the constructor is a real bug and must surface.
            try:
                inspect.signature(component.factory).bind(**built)
            except TypeError:
                raise ValueError(
                    component.unknown_options_message(list(params))
                ) from None
            except ValueError:
                pass  # unintrospectable factory: can't classify
            raise


# ---------------------------------------------------------------------------
# the default registry, pre-populated from the component families
# ---------------------------------------------------------------------------

registry = ComponentRegistry()


def build_athena_config(params: dict):
    """The one dict→AthenaConfig path (registry and spec layer both).

    Serialization turns tuples into lists and ``RewardWeights`` into a
    table; undo both so every entry point builds the identical
    (hash-identical) config from the same parameters.
    """
    from ..core.config import AthenaConfig, RewardWeights

    kwargs = {}
    for key, value in params.items():
        if key == "reward_weights" and isinstance(value, dict):
            value = RewardWeights(**value)
        elif isinstance(value, list):
            value = tuple(value)
        kwargs[key] = value
    try:
        return AthenaConfig(**kwargs)
    except TypeError:
        raise ValueError(
            f"unsupported athena options {sorted(kwargs)}; valid: "
            f"{sorted(AthenaConfig.__dataclass_fields__)}"
        ) from None


def _register_policies() -> None:
    from ..core.config import AthenaConfig
    from ..policies.athena import AthenaPolicy
    from ..policies.registry import POLICY_FACTORIES

    def make_athena(**kwargs):
        if not kwargs:
            return AthenaPolicy()
        return AthenaPolicy(build_athena_config(kwargs))

    def athena_error(bad: List[str]) -> str:
        return (
            f"unsupported athena options {bad}; valid: "
            f"{sorted(AthenaConfig.__dataclass_fields__)}"
        )

    def make_none(**kwargs):
        return None

    def none_error(bad: List[str]) -> str:
        return f"policy 'none' accepts no options; got {bad}"

    registry.register(
        "policy", "athena", make_athena,
        schema=schema_from_dataclass(AthenaConfig),
        description="Athena SARSA coordination (the paper's policy)",
        options_error=athena_error, replace=True,
    )
    registry.register(
        "policy", "none", make_none, schema={},
        description="no coordination: every mechanism always on",
        options_error=none_error, replace=True,
    )
    for name, factory in POLICY_FACTORIES.items():
        if name in ("athena", "none"):
            continue
        registry.register("policy", name, factory, replace=True)

    _install_legacy_fallback("policy", POLICY_FACTORIES)


def _install_legacy_fallback(kind: str, legacy: Dict[str, Callable]) -> None:
    """One fallback resolver per (kind, legacy dict) pair.

    Surfaces entries added to the legacy dict behind the registry's
    back — same Component shape everywhere, so fallback semantics can
    only change in one place.
    """
    def hook(name: str) -> Optional[Component]:
        factory = legacy.get(name)
        if factory is None:
            return None
        return Component(kind, name, factory,
                         schema_from_callable(factory),
                         open_options=_accepts_any_keyword(factory))

    registry.set_fallback(kind, hook, names=legacy.keys)


def _register_prefetchers() -> None:
    from ..prefetchers import PREFETCHERS

    for name, cls in PREFETCHERS.items():
        registry.register("prefetcher", name, cls, replace=True)
    _install_legacy_fallback("prefetcher", PREFETCHERS)


def _register_ocps() -> None:
    from ..ocp import OCPS

    for name, cls in OCPS.items():
        registry.register("ocp", name, cls, replace=True)
    _install_legacy_fallback("ocp", OCPS)


def _register_designs() -> None:
    from ..experiments.configs import CacheDesign

    presets = {
        "cd1": "OCP + 1 L2C prefetcher (POPET + Pythia)",
        "cd2": "OCP + 1 L1D prefetcher (POPET + IPCP)",
        "cd3": "OCP + 2 L2C prefetchers (POPET + SMS + Pythia)",
        "cd4": "OCP + 1 L1D + 1 L2C prefetcher (POPET + IPCP + Pythia)",
    }
    for name, description in presets.items():
        registry.register("design", name, getattr(CacheDesign, name),
                          description=description, replace=True)


def _register_trace_adapters() -> None:
    from ..workloads.ingest import TRACE_ADAPTERS

    for name, cls in TRACE_ADAPTERS.items():
        doc = (cls.__doc__ or "").strip().splitlines()
        registry.register(
            "trace_adapter", name, cls,
            description=doc[0] if doc else "", replace=True,
        )
    _install_legacy_fallback("trace_adapter", TRACE_ADAPTERS)


def _register_suites() -> None:
    from ..workloads.suites import (
        evaluation_workloads,
        extended_workloads,
        google_workloads,
        tuning_workloads,
    )

    registry.register(
        "suite", "evaluation", evaluation_workloads, schema={},
        description="the 100 evaluation workloads (paper Table 6)",
        replace=True,
    )
    registry.register(
        "suite", "tuning", tuning_workloads, schema={},
        description="20 DSE tuning workloads, disjoint from evaluation",
        replace=True,
    )
    registry.register(
        "suite", "google", google_workloads, schema={},
        description="unseen datacenter-like workloads (paper Figure 21)",
        replace=True,
    )
    registry.register(
        "suite", "extended", extended_workloads, schema={},
        description="extended families: phase-shift, strided-drift, "
                    "producer-consumer",
        replace=True,
    )


def _populate_default_registry() -> None:
    _register_policies()
    _register_prefetchers()
    _register_ocps()
    _register_designs()
    _register_suites()
    _register_trace_adapters()


_populate_default_registry()


# ---------------------------------------------------------------------------
# plugin decorators
# ---------------------------------------------------------------------------

def _plugin_decorator(kind: str, legacy_import: Optional[Callable]):
    """Build one ``@register_<kind>`` decorator.

    All four share the same behavior: register with the unified
    registry (refusing to clobber an existing name unless
    ``replace=True``) and mirror into the kind's legacy dict when one
    exists, so in-process consumers of those dicts stay consistent.
    """
    def register_fn(name: str, description: str = "",
                    replace: bool = False):
        def decorate(factory):
            registry.register(kind, name, factory,
                              description=description, replace=replace)
            if legacy_import is not None:
                legacy_import()[name] = factory
            return factory
        return decorate
    return register_fn


def _policy_dict():
    from ..policies.registry import POLICY_FACTORIES

    return POLICY_FACTORIES


def _prefetcher_dict():
    from ..prefetchers import PREFETCHERS

    return PREFETCHERS


def _ocp_dict():
    from ..ocp import OCPS

    return OCPS


def _trace_adapter_dict():
    from ..workloads.ingest import TRACE_ADAPTERS

    return TRACE_ADAPTERS


#: Class/factory decorator adding a coordination policy by name::
#:
#:     @register_policy("accuracy_gated")
#:     class AccuracyGatedPolicy(CoordinationPolicy): ...
register_policy = _plugin_decorator("policy", _policy_dict)
#: Class/factory decorator adding a prefetcher by name.
register_prefetcher = _plugin_decorator("prefetcher", _prefetcher_dict)
#: Class/factory decorator adding an off-chip predictor by name.
register_ocp = _plugin_decorator("ocp", _ocp_dict)
#: Factory decorator adding a cache-design preset by name.
register_design = _plugin_decorator("design", None)
#: Class/factory decorator adding an external-trace format by name::
#:
#:     @register_trace_adapter("champsimish")
#:     class ChampSimishAdapter:
#:         def peek_length(self, path): ...
#:         def load(self, path) -> Trace: ...
register_trace_adapter = _plugin_decorator(
    "trace_adapter", _trace_adapter_dict
)
#: Class decorator adding an invariant-linter rule by id (see
#: :mod:`repro.analysis`); the built-in rules register themselves when
#: the analysis package is imported::
#:
#:     @register_lint_rule("no-print-statements")
#:     class NoPrints(LintRule): ...
register_lint_rule = _plugin_decorator("lint_rule", None)


def make_design(name: str, **params):
    """Instantiate a cache design preset (``cd1`` … ``cd4`` or plugin)."""
    return registry.create("design", name.lower(), **params)
