#!/usr/bin/env python3
"""Link-check the markdown docs (CI `docs` job).

Scans README.md and docs/*.md for markdown links/images and verifies
that every *relative* target exists in the repository (anchors and
queries stripped; external http(s)/mailto links are skipped).  Also
checks that intra-doc reference style stays consistent: a link target
pointing at a directory must be a real directory.

Exit status: 0 when every link resolves, 1 otherwise (targets listed).
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: pages that must exist — deleting (or forgetting to commit) one of
#: these fails the docs job even though the glob would silently shrink.
REQUIRED_DOCS = (
    "README.md",
    "docs/architecture.md",
    "docs/traces.md",
    "docs/streaming.md",
    "docs/performance.md",
    "docs/observability.md",
    "docs/robustness.md",
    "docs/distributed.md",
    "docs/static-analysis.md",
)

#: [text](target) and ![alt](target), ignoring code spans.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_CODE_FENCE = re.compile(r"^(```|~~~)")
_EXTERNAL = ("http://", "https://", "mailto:")


def iter_links(path: pathlib.Path):
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if _CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            yield lineno, match.group(1)


def check_file(path: pathlib.Path) -> list:
    failures = []
    for lineno, target in iter_links(path):
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            failures.append(f"{path.relative_to(ROOT)}:{lineno}: "
                            f"broken link -> {target}")
    return failures


def main() -> int:
    sources = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))
    failures = []
    for required in REQUIRED_DOCS:
        if not (ROOT / required).exists():
            failures.append(f"missing required doc: {required}")
    checked = 0
    for source in sources:
        if not source.exists():
            failures.append(f"missing expected doc: {source}")
            continue
        checked += 1
        failures.extend(check_file(source))
    for failure in failures:
        print(failure, file=sys.stderr)
    print(f"checked {checked} file(s): "
          f"{'FAILED' if failures else 'all links resolve'}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
