"""repro.api — the typed, declarative experiment SDK.

The single programmatic front door to the toolkit: typed specs
(:class:`RunSpec`, :class:`MixSpec`, :class:`SweepSpec`,
:class:`FigureSpec`, :class:`ExperimentSpec`) that serialize to
JSON/TOML and lower onto the parallel engine's content-addressed
requests; a unified schema-validated :data:`registry` of policies,
prefetchers, OCPs, cache designs, and workload suites (with
:func:`register_policy`-style plugin decorators); and a
:class:`Session` facade with blocking, streaming, and whole-experiment
execution.  The CLI is a thin shell over this module.
"""

from ..engine.faults import (ExecutionError, ExecutionPolicy, FaultPlan,
                             RequestFailure)
from .params import coerce_value, normalize_params, parse_assignments
from .registry import (
    ComponentRegistry,
    ParamSpec,
    make_design,
    register_design,
    register_ocp,
    register_policy,
    register_prefetcher,
    register_trace_adapter,
    registry,
    schema_from_callable,
)
from .results import (
    ExperimentResult,
    FigureOutcome,
    MixResult,
    RunResult,
    SweepResult,
)
from .session import Session
from .spec import (
    SPEC_SCHEMA,
    ExperimentSpec,
    FigureSpec,
    MixSpec,
    RunSpec,
    SpecError,
    SweepSpec,
)

__all__ = [
    "ComponentRegistry",
    "ExecutionError",
    "ExecutionPolicy",
    "ExperimentResult",
    "ExperimentSpec",
    "FaultPlan",
    "FigureOutcome",
    "FigureSpec",
    "MixResult",
    "MixSpec",
    "ParamSpec",
    "RequestFailure",
    "RunResult",
    "RunSpec",
    "SPEC_SCHEMA",
    "Session",
    "SpecError",
    "SweepResult",
    "SweepSpec",
    "coerce_value",
    "make_design",
    "normalize_params",
    "parse_assignments",
    "register_design",
    "register_ocp",
    "register_policy",
    "register_prefetcher",
    "register_trace_adapter",
    "registry",
    "schema_from_callable",
]
