"""Integration tests for the single-core simulator and its epoch loop."""

import pytest

from repro.policies.base import CoordinationAction, CoordinationPolicy, NaivePolicy
from repro.prefetchers.streamer import StreamPrefetcher
from repro.ocp.ttp import TtpPredictor
from repro.sim.hierarchy import CacheHierarchy
from repro.sim.params import scaled_system
from repro.sim.simulator import Simulator
from repro.workloads.generators import GENERATORS
from repro.workloads.suites import build_trace, find_workload


def make_trace(pattern="streaming", length=3000, seed=5):
    return GENERATORS[pattern]("t", "test", seed, length)


def make_hierarchy(prefetch=True, ocp=True):
    return CacheHierarchy(
        scaled_system(),
        prefetchers=[StreamPrefetcher()] if prefetch else [],
        ocp=TtpPredictor() if ocp else None,
    )


class RecordingPolicy(CoordinationPolicy):
    """Counts decisions and alternates the prefetcher enable bit."""

    def __init__(self):
        super().__init__()
        self.telemetries = []

    def decide(self, telemetry):
        self.telemetries.append(telemetry)
        on = len(self.telemetries) % 2 == 0
        action = CoordinationAction(
            prefetchers_enabled=(on,) * self.num_prefetchers,
            ocp_enabled=self.has_ocp,
        )
        self.record(action)
        return action


class TestBasicRun:
    def test_run_completes_and_counts_instructions(self):
        trace = make_trace(length=2000)
        result = Simulator(trace, make_hierarchy(), warmup_fraction=0.0).run()
        assert result.instructions == len(trace)
        assert result.cycles > 0
        assert 0 < result.ipc < 6.0

    def test_stats_partitioned_by_type(self):
        trace = make_trace(length=2000)
        result = Simulator(trace, make_hierarchy(), warmup_fraction=0.0).run()
        assert result.stats.loads == trace.num_loads
        assert result.stats.stores == trace.num_stores
        assert result.stats.branches == trace.num_branches

    def test_warmup_excludes_stats_but_not_state(self):
        trace = make_trace(length=4000)
        warm = Simulator(trace, make_hierarchy(), warmup_fraction=0.5).run()
        assert warm.instructions == 2000
        assert warm.cycles > 0

    def test_invalid_parameters_rejected(self):
        trace = make_trace(length=100)
        with pytest.raises(ValueError):
            Simulator(trace, make_hierarchy(), epoch_length=0)
        with pytest.raises(ValueError):
            Simulator(trace, make_hierarchy(), warmup_fraction=1.0)

    def test_deterministic(self):
        trace = make_trace(length=2000)
        a = Simulator(trace, make_hierarchy(), warmup_fraction=0.0).run()
        b = Simulator(trace, make_hierarchy(), warmup_fraction=0.0).run()
        assert a.cycles == b.cycles
        assert a.stats.llc_misses == b.stats.llc_misses


class TestEpochLoop:
    def test_policy_called_once_per_epoch(self):
        trace = make_trace(length=3000)
        policy = RecordingPolicy()
        Simulator(trace, make_hierarchy(), policy=policy,
                  epoch_length=250, warmup_fraction=0.0).run()
        assert len(policy.telemetries) == len(trace) // 250

    def test_epoch_telemetry_instruction_counts(self):
        trace = make_trace(length=3000)
        policy = RecordingPolicy()
        Simulator(trace, make_hierarchy(), policy=policy,
                  epoch_length=250, warmup_fraction=0.0).run()
        for telemetry in policy.telemetries[1:]:
            assert telemetry.instructions == 250

    def test_actions_actually_gate_prefetcher(self):
        trace = make_trace(length=4000)
        h = make_hierarchy()
        policy = RecordingPolicy()
        result = Simulator(trace, h, policy=policy, epoch_length=200,
                           warmup_fraction=0.0).run()
        # Policy alternates enable/disable; with a pure stream the enabled
        # epochs issue prefetches, so the count is well below always-on.
        always_on = Simulator(
            make_trace(length=4000), make_hierarchy(),
            policy=NaivePolicy(), epoch_length=200, warmup_fraction=0.0,
        ).run()
        assert 0 < result.stats.prefetches_issued
        assert result.stats.prefetches_issued < always_on.stats.prefetches_issued

    def test_telemetry_features_in_unit_range(self):
        trace = make_trace("hash_probe", length=4000)
        policy = RecordingPolicy()
        Simulator(trace, make_hierarchy(), policy=policy,
                  epoch_length=200, warmup_fraction=0.0).run()
        for t in policy.telemetries:
            assert 0.0 <= t.bandwidth_usage <= 1.0
            assert 0.0 <= t.prefetcher_accuracy <= 1.0
            assert 0.0 <= t.ocp_accuracy <= 1.0
            assert 0.0 <= t.cache_pollution <= 1.0

    def test_action_history_recorded_in_result(self):
        trace = make_trace(length=2000)
        result = Simulator(trace, make_hierarchy(), policy=NaivePolicy(),
                           epoch_length=200, warmup_fraction=0.0).run()
        assert len(result.actions) == len(trace) // 200
        dist = result.action_distribution()
        assert sum(dist.values()) == pytest.approx(1.0)


class TestBehaviouralShape:
    """The paper's headline phenomena must hold on this substrate."""

    def test_prefetching_speeds_up_streams(self):
        trace = make_trace("streaming", length=6000)
        base = Simulator(trace, make_hierarchy(prefetch=False, ocp=False)).run()
        pf = Simulator(trace, make_hierarchy(prefetch=True, ocp=False)).run()
        assert pf.ipc > base.ipc * 1.2

    def test_prefetching_hurts_pointer_chase(self):
        from repro.prefetchers.pythia import PythiaPrefetcher
        trace = make_trace("hash_probe", length=6000)
        base = Simulator(trace, make_hierarchy(prefetch=False, ocp=False)).run()
        h = CacheHierarchy(scaled_system(), prefetchers=[PythiaPrefetcher()])
        pf = Simulator(trace, h).run()
        assert pf.ipc < base.ipc

    def test_ocp_speeds_up_pointer_chase(self):
        from repro.ocp.popet import PopetPredictor
        trace = make_trace("pointer_chase", length=6000)
        base = Simulator(trace, make_hierarchy(prefetch=False, ocp=False)).run()
        h = CacheHierarchy(scaled_system(), ocp=PopetPredictor())
        ocp = Simulator(trace, h).run()
        assert ocp.ipc > base.ipc * 1.05

    def test_bandwidth_scaling_improves_memory_bound_ipc(self):
        trace = make_trace("hash_probe", length=6000)
        slow = Simulator(
            trace, CacheHierarchy(scaled_system(bandwidth_gbps=1.6))
        ).run()
        fast = Simulator(
            trace, CacheHierarchy(scaled_system(bandwidth_gbps=12.8))
        ).run()
        assert fast.ipc > slow.ipc * 1.3

    def test_registry_workload_runs_end_to_end(self):
        trace = build_trace(find_workload("spec06.mcf_like.0"), 4000)
        result = Simulator(trace, make_hierarchy()).run()
        assert result.stats.llc_mpki > 3.0  # paper's inclusion criterion
