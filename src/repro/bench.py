"""Simulation-throughput benchmark harness (``repro bench``).

Measures *simulated instructions per second* — the single number every
figure regeneration is bound by on a cold store — for a small matrix of
(workload x policy) cells on the paper's default CD1 design, and writes
the measurements to ``BENCH_sim_throughput.json``.

Three kinds of numbers live in the output:

* per-cell ``ips`` — raw simulated instructions/second on this machine;
* ``ips_per_mop`` — the same normalized by a pure-Python calibration
  score (million calibration ops/second), so measurements taken on
  machines of different speeds are comparable;
* ``reference`` — the checked-in pre-optimization (seed) measurements
  (``benchmarks/throughput_seed_baseline.json``) plus the per-cell and
  geomean speedup of the current core against them.

``repro bench --check BASELINE`` additionally compares the normalized
geomean against a checked-in baseline file and exits non-zero if it
regressed by more than ``--tolerance`` (CI's ``bench-smoke`` job).
"""

from __future__ import annotations

import json
import math
import pathlib
import platform
import time
from typing import List, Optional, Tuple

BENCH_SCHEMA = 1

#: Default benchmark matrix: one streaming, one pointer-chasing, one
#: graph workload — the memory behaviours that stress different parts of
#: the hot path — under the uncoordinated and the Athena-coordinated
#: configurations.
DEFAULT_WORKLOADS = (
    "spec06.libquantum_like.0",   # streaming: prefetcher-heavy
    "spec06.mcf_like.0",          # pointer chase: dependent-load bound
    "ligra.BFS.0",                # graph: irregular + bursty
)
DEFAULT_POLICIES = ("none", "athena")

#: Checked-in pre-optimization measurements (recorded on the machine that
#: landed the SoA core), used as the before/after reference in reports.
SEED_BASELINE_PATH = (
    pathlib.Path(__file__).resolve().parents[2]
    / "benchmarks" / "throughput_seed_baseline.json"
)


def _calibrate(repeats: int = 3) -> float:
    """Machine-speed score in million calibration ops/second.

    The loop mixes integer arithmetic, list indexing and branching — the
    same kind of work the interpreter does in the simulator hot path —
    so the score tracks how fast *this* machine runs the simulator, and
    ``ips / score`` is comparable across machines.
    """
    n = 200_000
    best = math.inf
    for _ in range(repeats):
        buf = [0] * 1024
        acc = 0
        t0 = time.perf_counter()
        for i in range(n):
            j = i & 1023
            v = buf[j]
            if v > acc:
                acc = v - acc
            else:
                acc = acc + (i & 7)
            buf[j] = acc & 0xFFFF
        best = min(best, time.perf_counter() - t0)
    return n / best / 1e6


def measure_cell(
    workload: str,
    policy: str,
    design_name: str,
    trace_length: int,
    epoch_length: int,
    repeats: int,
) -> dict:
    """Time cold single-core runs of one (workload, policy) cell.

    The trace and hierarchy are rebuilt for every repeat (a cold run),
    but only ``Simulator.run`` is inside the timer: trace *generation*
    throughput is a separate concern.  Reports the best repeat.
    """
    from repro.engine.jobs import _build_policy
    from repro.experiments.configs import CacheDesign, build_hierarchy
    from repro.sim.simulator import Simulator
    from repro.workloads.suites import build_trace, find_workload

    spec = find_workload(workload)
    design = getattr(CacheDesign, design_name)()
    best = math.inf
    result = None
    for _ in range(repeats):
        trace = build_trace(spec, trace_length)
        hierarchy = build_hierarchy(design)
        pol = _build_policy(policy, None) if policy != "none" else None
        sim = Simulator(trace, hierarchy, policy=pol,
                        epoch_length=epoch_length, warmup_fraction=0.35)
        t0 = time.perf_counter()
        result = sim.run()
        best = min(best, time.perf_counter() - t0)
    return {
        "workload": workload,
        "policy": policy,
        "design": design_name,
        "trace_length": trace_length,
        "measured_instructions": result.instructions,
        "seconds": best,
        "ips": trace_length / best,
    }


def geomean(values: List[float]) -> float:
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_bench(
    workloads: Tuple[str, ...] = DEFAULT_WORKLOADS,
    policies: Tuple[str, ...] = DEFAULT_POLICIES,
    design: str = "cd1",
    trace_length: int = 24_000,
    epoch_length: int = 600,
    repeats: int = 3,
    quick: bool = False,
    reference_path: Optional[pathlib.Path] = SEED_BASELINE_PATH,
    progress=None,
) -> dict:
    """Run the benchmark matrix; returns the JSON-able report."""
    if quick:
        workloads = workloads[:2]
        trace_length = min(trace_length, 12_000)
        epoch_length = min(epoch_length, 300)
        repeats = 1

    calibration = _calibrate(1 if quick else 3)
    cells = []
    for workload in workloads:
        for policy in policies:
            if progress is not None:
                progress(workload, policy)
            cell = measure_cell(workload, policy, design,
                                trace_length, epoch_length, repeats)
            cell["ips_per_mop"] = cell["ips"] / calibration
            cells.append(cell)

    report = {
        "schema": BENCH_SCHEMA,
        "unit": "simulated instructions per second (cold Simulator.run)",
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "calibration_mops": calibration,
        "cells": cells,
        "geomean_ips": geomean([c["ips"] for c in cells]),
        "geomean_ips_per_mop": geomean([c["ips_per_mop"] for c in cells]),
    }

    if reference_path is not None and pathlib.Path(reference_path).exists():
        reference = json.loads(pathlib.Path(reference_path).read_text())
        report["reference"] = {
            "path": str(reference_path),
            "geomean_ips": reference.get("geomean_ips"),
            "cells": reference.get("cells"),
        }
        ref_by_key = {
            (c["workload"], c["policy"]): c
            for c in reference.get("cells", ())
        }
        speedups = []
        for cell in cells:
            ref = ref_by_key.get((cell["workload"], cell["policy"]))
            # Only compare like-for-like cells (a --quick run shortens the
            # trace, which shifts ips independently of core speed).
            if (ref and ref.get("ips")
                    and ref.get("trace_length") == cell["trace_length"]):
                cell["speedup_vs_reference"] = cell["ips"] / ref["ips"]
                speedups.append(cell["speedup_vs_reference"])
        if speedups:
            report["geomean_speedup_vs_reference"] = geomean(speedups)
    return report


def check_regression(report: dict, baseline_path: pathlib.Path,
                     tolerance: float = 0.30) -> Tuple[bool, str]:
    """Compare the normalized geomean against a checked-in baseline.

    Returns ``(ok, message)``.  The comparison uses the
    calibration-normalized score so a slower CI machine does not read as
    a regression; ``tolerance`` is the allowed fractional slowdown.
    """
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    base_score = baseline.get("geomean_ips_per_mop")
    if not base_score:
        return False, f"baseline {baseline_path} has no geomean_ips_per_mop"
    # Refuse apples-to-oranges comparisons: the normalized geomean is only
    # meaningful against a baseline measured over the same cell matrix.
    def _matrix(rep):
        return sorted(
            (c["workload"], c["policy"], c["trace_length"])
            for c in rep.get("cells", ())
        )
    if _matrix(report) != _matrix(baseline):
        return False, (
            f"cell matrix mismatch vs {baseline_path} (different workloads, "
            f"policies, or trace lengths — e.g. --quick vs full); "
            f"re-record the baseline with the same bench invocation"
        )
    current = report["geomean_ips_per_mop"]
    floor = base_score * (1.0 - tolerance)
    ratio = current / base_score
    message = (
        f"normalized throughput {current:,.1f} vs baseline "
        f"{base_score:,.1f} ({ratio:.2f}x, floor {floor:,.1f})"
    )
    return current >= floor, message


def format_report(report: dict) -> str:
    """Human-readable table for the CLI."""
    lines = []
    lines.append(
        f"{'workload':32s} {'policy':8s} {'ips':>12s} "
        f"{'norm':>10s} {'vs seed':>8s}"
    )
    for cell in report["cells"]:
        speedup = cell.get("speedup_vs_reference")
        lines.append(
            f"{cell['workload']:32s} {cell['policy']:8s} "
            f"{cell['ips']:>12,.0f} {cell['ips_per_mop']:>10,.1f} "
            f"{speedup and f'{speedup:.2f}x' or '-':>8s}"
        )
    lines.append(
        f"{'geomean':32s} {'':8s} {report['geomean_ips']:>12,.0f} "
        f"{report['geomean_ips_per_mop']:>10,.1f} "
        + (
            f"{report['geomean_speedup_vs_reference']:>7.2f}x"
            if "geomean_speedup_vs_reference" in report else f"{'-':>8s}"
        )
    )
    lines.append(f"calibration: {report['calibration_mops']:.1f} Mops/s")
    return "\n".join(lines)
